"""Severity bands, bootstrap intervals and golden-band validation.

Covers the statistical half of :mod:`repro.validation`: band
classification and policy plumbing, the percentile bootstrap, the golden
corpus round trip, seed-batch measurement equivalence, and the
``python -m repro.experiments validate`` workflow — including that an
unmodified golden classifies ``OK`` and a perturbed one lands in exactly
the band its deviation calls for.
"""

from __future__ import annotations

import json

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.engine.batch import TrafficBatch
from repro.traffic.simulation import TrafficSimulation
from repro.validation import (
    METRICS,
    BandPolicy,
    GoldenCase,
    Severity,
    bootstrap_mean,
    load_goldens,
    measure_case,
    relative_deviation,
    validate_goldens,
    write_goldens,
)

#: A fast golden corpus for the filesystem-round-trip tests.
FAST_CASES = (
    GoldenCase(
        name="toph-uniform-fast", topology="toph", pattern="uniform",
        injector="poisson", load=0.3, seeds=(0, 1, 2), warmup=30, measure=100,
    ),
    GoldenCase(
        name="mesh-hotspot-fast", topology="mesh",
        topology_params=(("width", 2), ("height", 2)),
        pattern="hotspot", pattern_params=(("p_hot", 0.6),),
        injector="bernoulli", load=0.25, seeds=(0, 1, 2),
        warmup=30, measure=100,
    ),
)


class TestSeverity:
    def test_from_name_is_case_insensitive(self):
        assert Severity.from_name("Moderate") is Severity.MODERATE
        assert Severity.from_name(" ok ") is Severity.OK

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity 'lethal'"):
            Severity.from_name("lethal")

    def test_ordering(self):
        assert Severity.OK < Severity.MINOR < Severity.CRITICAL


class TestBandPolicy:
    def test_classification_edges_are_inclusive(self):
        policy = BandPolicy()
        assert policy.classify(0.0) is Severity.OK
        assert policy.classify(0.01) is Severity.OK
        assert policy.classify(0.010001) is Severity.MINOR
        assert policy.classify(0.03) is Severity.MINOR
        assert policy.classify(0.08) is Severity.MODERATE
        assert policy.classify(0.20) is Severity.SEVERE
        assert policy.classify(0.21) is Severity.CRITICAL
        assert policy.classify(float("inf")) is Severity.CRITICAL

    def test_classify_takes_absolute_value(self):
        assert BandPolicy().classify(-0.5) is Severity.CRITICAL

    def test_action_mapping(self):
        policy = BandPolicy()
        assert policy.action(Severity.OK) == "accept"
        assert policy.action(Severity.MINOR) == "accept"
        assert policy.action(Severity.MODERATE) == "warn"
        assert policy.action(Severity.SEVERE) == "reject"
        assert policy.action(Severity.CRITICAL) == "reject"

    def test_edges_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            BandPolicy(ok=0.05, minor=0.03)
        with pytest.raises(ValueError, match="strictly increasing"):
            BandPolicy(ok=-0.1)

    def test_reject_cannot_precede_warn(self):
        with pytest.raises(ValueError, match="cannot precede"):
            BandPolicy(warn_from=Severity.SEVERE, reject_from=Severity.MINOR)

    def test_dict_round_trip(self):
        policy = BandPolicy(
            ok=0.02, minor=0.05, moderate=0.1, severe=0.3,
            warn_from=Severity.MINOR, reject_from=Severity.CRITICAL,
        )
        assert BandPolicy.from_dict(policy.to_dict()) == policy

    def test_from_spec_overrides(self):
        policy = BandPolicy.from_spec(
            "0.005,0.02,0.05,0.1", warn_from="minor", reject_from="severe"
        )
        assert policy.edges == (0.005, 0.02, 0.05, 0.1)
        assert policy.warn_from is Severity.MINOR

    def test_from_spec_needs_four_edges(self):
        with pytest.raises(ValueError, match="exactly 4"):
            BandPolicy.from_spec("0.01,0.02")

    def test_from_spec_rejects_non_numeric(self):
        with pytest.raises(ValueError, match="must be numbers"):
            BandPolicy.from_spec("a,b,c,d")


class TestBootstrap:
    def test_interval_brackets_the_mean(self):
        summary = bootstrap_mean([3.0, 4.0, 5.0, 6.0, 10.0])
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.count == 5

    def test_deterministic_for_fixed_seed(self):
        samples = [1.0, 5.0, 2.0, 8.0]
        assert bootstrap_mean(samples) == bootstrap_mean(samples)

    def test_constant_sample_has_zero_width(self):
        summary = bootstrap_mean([7.0] * 6)
        assert summary.half_width == 0.0
        assert summary.std == 0.0

    def test_single_sample_is_a_point_interval(self):
        summary = bootstrap_mean([42.0])
        assert (summary.ci_low, summary.ci_high) == (42.0, 42.0)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="at least one sample"):
            bootstrap_mean([])
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_mean([1.0, 2.0], confidence=1.0)
        with pytest.raises(ValueError, match="resamples"):
            bootstrap_mean([1.0, 2.0], resamples=0)


class TestGoldenCase:
    def test_dict_round_trip(self):
        case = FAST_CASES[1]
        assert GoldenCase.from_dict(case.to_dict()) == case

    def test_validation_happens_at_construction(self):
        with pytest.raises(ValueError, match="at least one seed"):
            GoldenCase(
                name="empty", topology="toph", pattern="uniform",
                injector="poisson", load=0.3, seeds=(),
            )
        with pytest.raises(ValueError, match="unknown scale"):
            GoldenCase(
                name="huge", topology="toph", pattern="uniform",
                injector="poisson", load=0.3, scale="huge",
            )
        with pytest.raises(ValueError, match="unknown topology"):
            GoldenCase(
                name="warp", topology="warp", pattern="uniform",
                injector="poisson", load=0.3,
            )
        with pytest.raises(ValueError, match="p_hot"):
            GoldenCase(
                name="hot", topology="toph", pattern="hotspot",
                pattern_params=(("p_hot", 2.0),), injector="poisson", load=0.3,
            )


class TestSeedBatchMeasurement:
    def test_of_seeds_matches_per_sim_runs(self):
        """The batch-of-seeds samples equal S independent vector runs."""
        case = FAST_CASES[0]
        summaries = measure_case(case)
        for metric in METRICS:
            per_seed = []
            for seed in case.seeds:
                cluster = MemPoolCluster(
                    MemPoolConfig.tiny(case.topology), engine="vector"
                )
                simulation = TrafficSimulation(
                    cluster, case.load, pattern=case.pattern, seed=seed,
                    injector=case.injector,
                )
                result = simulation.run(case.warmup, case.measure)
                per_seed.append(getattr(result, metric))
            assert summaries[metric] == bootstrap_mean(per_seed)

    def test_of_seeds_rejects_empty_seed_list(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny(), engine="batch")
        with pytest.raises(ValueError, match="at least one seed"):
            TrafficBatch.of_seeds(cluster, 0.3, [])


class TestRelativeDeviation:
    def test_zero_golden_guard(self):
        assert relative_deviation(0.0, 0.0) == 0.0
        assert relative_deviation(0.1, 0.0) == float("inf")

    def test_symmetric_magnitude(self):
        assert relative_deviation(1.05, 1.0) == pytest.approx(0.05)
        assert relative_deviation(0.95, 1.0) == pytest.approx(0.05)


class TestGoldenValidation:
    @pytest.fixture()
    def golden_path(self, tmp_path):
        path = tmp_path / "GOLDEN_validation.json"
        write_goldens(path, cases=FAST_CASES)
        return path

    def test_unmodified_golden_classifies_ok(self, golden_path):
        """Determinism: a clean tree reproduces its goldens exactly."""
        report = validate_goldens(golden_path)
        assert report.worst is Severity.OK
        assert report.verdict == "accept"
        assert report.exit_code == 0
        assert len(report.rows) == len(FAST_CASES) * len(METRICS)
        assert all(row.deviation == 0.0 for row in report.rows)
        assert all(row.golden_in_ci for row in report.rows)

    @pytest.mark.parametrize(
        "factor, severity, verdict, exit_code",
        [
            (1.02, Severity.MINOR, "accept", 0),
            (1.05, Severity.MODERATE, "warn", 0),
            (1.12, Severity.SEVERE, "reject", 1),
            (1.50, Severity.CRITICAL, "reject", 1),
        ],
    )
    def test_perturbed_golden_lands_in_its_band(
        self, golden_path, factor, severity, verdict, exit_code
    ):
        """A committed-mean perturbation classifies by its deviation size."""
        document = json.loads(golden_path.read_text())
        golden = document["cases"][0]["golden"]["average_latency"]
        golden["mean"] = golden["mean"] * factor
        golden_path.write_text(json.dumps(document))
        report = validate_goldens(golden_path)
        rows = {
            (row.case, row.metric): row for row in report.rows
        }
        row = rows[(FAST_CASES[0].name, "average_latency")]
        # measured/golden = 1/factor, so deviation = (factor-1)/factor.
        assert row.deviation == pytest.approx((factor - 1.0) / factor)
        assert row.severity is severity
        assert report.worst is severity
        assert report.verdict == verdict
        assert report.exit_code == exit_code

    def test_report_renders_rows_and_verdict(self, golden_path):
        report = validate_goldens(golden_path)
        text = report.report()
        assert "toph-uniform-fast" in text
        assert "verdict: accept" in text
        payload = report.to_dict()
        assert payload["verdict"] == "accept"
        assert len(payload["rows"]) == len(report.rows)

    def test_missing_golden_file_points_at_update(self, tmp_path):
        with pytest.raises(ValueError, match="--update"):
            validate_goldens(tmp_path / "absent.json")

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="schema"):
            validate_goldens(path)

    def test_load_round_trip(self, golden_path):
        records, policy = load_goldens(golden_path)
        assert [case.name for case, _ in records] == [
            case.name for case in FAST_CASES
        ]
        assert policy == BandPolicy()
        for _case, summaries in records:
            assert set(summaries) == set(METRICS)


class TestValidateCli:
    """``python -m repro.experiments validate`` end to end."""

    def _write_fast_golden(self, tmp_path):
        path = tmp_path / "golden.json"
        write_goldens(path, cases=FAST_CASES[:1])
        return path

    def test_validate_accepts_clean_golden(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        golden = self._write_fast_golden(tmp_path)
        report_path = tmp_path / "report.json"
        code = main(
            ["validate", "--golden", str(golden), "--report", str(report_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verdict: accept" in out
        payload = json.loads(report_path.read_text())
        assert payload["verdict"] == "accept"

    def test_validate_rejects_perturbed_golden(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        golden = self._write_fast_golden(tmp_path)
        document = json.loads(golden.read_text())
        for summary in document["cases"][0]["golden"].values():
            summary["mean"] *= 2.0
        golden.write_text(json.dumps(document))
        code = main(["validate", "--golden", str(golden), "--report", "none"])
        assert code == 1
        assert "verdict: reject" in capsys.readouterr().out

    def test_validate_band_overrides_tighten_the_gate(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        golden = self._write_fast_golden(tmp_path)
        document = json.loads(golden.read_text())
        entry = document["cases"][0]["golden"]["average_latency"]
        entry["mean"] *= 1.02  # ~2% off: MINOR under the default bands
        golden.write_text(json.dumps(document))
        assert main(
            ["validate", "--golden", str(golden), "--report", "none"]
        ) == 0
        capsys.readouterr()
        # Tightened bands push the same deviation into reject territory.
        code = main([
            "validate", "--golden", str(golden), "--report", "none",
            "--bands", "0.0001,0.001,0.005,0.01",
        ])
        assert code == 1
        assert "verdict: reject" in capsys.readouterr().out

    def test_validate_update_writes_golden(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.__main__ import main
        from repro.validation import golden as golden_module

        monkeypatch.setattr(golden_module, "DEFAULT_CASES", FAST_CASES[:1])
        target = tmp_path / "fresh.json"
        assert main(["validate", "--golden", str(target), "--update"]) == 0
        assert "committed 1 golden case" in capsys.readouterr().out
        records, _ = load_goldens(target)
        assert records[0][0].name == FAST_CASES[0].name

    def test_validate_missing_golden_exits_one(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        code = main(
            ["validate", "--golden", str(tmp_path / "nope.json"),
             "--report", "none"]
        )
        assert code == 1
        assert "--update" in capsys.readouterr().out
