"""Tests of distributed sweep execution (shards, scheduler, transport, caches).

The distributed stack's contract is strong — results byte-identical to a
serial run, under the same content-addressed cache keys, surviving worker
crashes — so these tests lean on end-to-end comparisons against the
serial executor as much as on unit-level checks of the moving parts.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import socket
import threading
import time

import pytest

from repro.evaluation.settings import ExperimentSettings
from repro.experiments import (
    MISS,
    Executor,
    ExperimentSpec,
    MemoryCache,
    ResultCache,
    Sweep,
)
from repro.experiments.batch import BatchRunner, spec_group_key
from repro.experiments.distributed import (
    CacheClient,
    CacheServer,
    DistributedExecutor,
    Shard,
    ShardExecutionError,
    ShardScheduler,
    SocketStream,
    WorkerServer,
    WorkerSpec,
    parse_cache_spec,
    parse_workers,
    plan_shards,
    run_shard_specs,
)
from repro.experiments.distributed.transport import (
    MAX_FRAME_BYTES,
    StreamClosed,
    StreamTimeout,
    dump_message,
    load_frame_length,
)
from repro.experiments.registry import EXPERIMENTS


def demo_specs(count, runner="repro.experiments.demo:multiply", **base):
    return Sweep(runner, grid={"a": tuple(range(count))}, base=base or {"b": 3}).specs()


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


# --------------------------------------------------------------------- #
# Shard planning
# --------------------------------------------------------------------- #


class TestPlanShards:
    def test_unbatchable_specs_become_singletons(self):
        shards = plan_shards(demo_specs(4))
        assert [shard.size for shard in shards] == [1, 1, 1, 1]
        assert all(shard.group is None for shard in shards)
        covered = sorted(index for shard in shards for index in shard.indices)
        assert covered == [0, 1, 2, 3]

    def test_shards_follow_batch_group_boundaries(self):
        settings = ExperimentSettings(
            engine="batch", warmup_cycles=50, measure_cycles=100
        )
        specs = EXPERIMENTS["fig5"].build_sweep(settings).specs()
        shards = plan_shards(specs)
        for shard in shards:
            keys = {spec_group_key(specs[index]) for index in shard.indices}
            assert len(keys) == 1  # one compiled network per shard
        covered = sorted(index for shard in shards for index in shard.indices)
        assert covered == list(range(len(specs)))

    def test_max_points_splits_groups_without_mixing_them(self):
        settings = ExperimentSettings(
            engine="batch", warmup_cycles=50, measure_cycles=100
        )
        specs = EXPERIMENTS["fig5"].build_sweep(settings).specs()
        shards = plan_shards(specs, max_points=2)
        assert all(shard.size <= 2 for shard in shards)
        for shard in shards:
            keys = {spec_group_key(specs[index]) for index in shard.indices}
            assert len(keys) == 1

    def test_miss_indices_restrict_the_plan(self):
        shards = plan_shards(demo_specs(5), miss_indices=[1, 3])
        covered = sorted(index for shard in shards for index in shard.indices)
        assert covered == [1, 3]

    def test_largest_shard_first_with_dense_ids(self):
        settings = ExperimentSettings(
            engine="batch", warmup_cycles=50, measure_cycles=100
        )
        specs = EXPERIMENTS["fig5"].build_sweep(settings).specs()
        shards = plan_shards(specs)
        sizes = [shard.size for shard in shards]
        assert sizes == sorted(sizes, reverse=True)
        assert [shard.shard_id for shard in shards] == list(range(len(shards)))


# --------------------------------------------------------------------- #
# Work-stealing lease scheduler
# --------------------------------------------------------------------- #


class TestShardScheduler:
    def make(self, sizes=(1, 1, 1, 1), workers=("a", "b"), **kwargs):
        shards = [Shard(i, tuple(range(size))) for i, size in enumerate(sizes)]
        clock = FakeClock()
        scheduler = ShardScheduler(shards, list(workers), clock=clock, **kwargs)
        return scheduler, clock

    def test_round_robin_home_queues_and_lease(self):
        scheduler, _ = self.make()
        assert scheduler.lease("a").shard_id == 0
        assert scheduler.lease("b").shard_id == 1
        assert scheduler.lease("a").shard_id == 2
        assert scheduler.lease("b").shard_id == 3

    def test_idle_worker_steals_from_the_longest_queue(self):
        scheduler, _ = self.make(sizes=(1, 1, 1, 1), workers=("a", "b"))
        # b drains its own queue, then steals a's remaining shard.
        assert scheduler.lease("b").shard_id == 1
        assert scheduler.lease("b").shard_id == 3
        stolen = scheduler.lease("b")
        assert stolen.shard_id in (0, 2)
        assert scheduler.steals == 1

    def test_complete_is_idempotent_first_writer_wins(self):
        scheduler, _ = self.make()
        shard = scheduler.lease("a")
        assert scheduler.complete(shard.shard_id, "a") is True
        assert scheduler.complete(shard.shard_id, "a") is False
        assert scheduler.per_worker["a"]["shards"] == 1

    def test_complete_of_unknown_shard_is_a_protocol_error(self):
        scheduler, _ = self.make()
        with pytest.raises(KeyError):
            scheduler.complete(99, "a")

    def test_expired_lease_requeues_and_late_completion_still_wins(self):
        scheduler, clock = self.make(sizes=(1,), workers=("a", "b"), lease_s=10.0)
        shard = scheduler.lease("a")
        clock.advance(11.0)
        assert [s.shard_id for s in scheduler.expire()] == [shard.shard_id]
        assert scheduler.requeues == 1
        # The presumed-dead worker finishes first: its result is accepted...
        assert scheduler.complete(shard.shard_id, "a") is True
        # ...and the requeued copy is skipped by the queue scan.
        assert scheduler.lease("b") is None
        assert scheduler.finished

    def test_heartbeat_extends_the_lease(self):
        scheduler, clock = self.make(sizes=(1,), lease_s=10.0)
        shard = scheduler.lease("a")
        clock.advance(8.0)
        assert scheduler.heartbeat(shard.shard_id, "a") is True
        clock.advance(8.0)  # 16s since lease, 8s since heartbeat
        assert scheduler.expire() == []
        assert scheduler.heartbeat(shard.shard_id, "b") is False  # not the holder

    def test_fail_requeues_everything_the_worker_held(self):
        scheduler, _ = self.make(sizes=(1, 1, 1, 1))
        first = scheduler.lease("a")
        lost = scheduler.fail("a")
        assert [shard.shard_id for shard in lost] == [first.shard_id]
        assert scheduler.requeues == 1
        # The requeued shard lands at the front of a queue and is re-leased.
        seen = {scheduler.lease("b").shard_id for _ in range(4)}
        assert first.shard_id in seen

    def test_requeue_budget_poisons_the_shard(self):
        scheduler, clock = self.make(
            sizes=(1,), workers=("a", "b"), lease_s=10.0, max_requeues=2
        )
        for _ in range(3):  # 3 expiries > max_requeues=2
            shard = scheduler.lease("a")
            assert shard is not None
            clock.advance(11.0)
            scheduler.expire()
        poisoned = scheduler.take_poisoned()
        assert [shard.shard_id for shard in poisoned] == [0]
        # Poisoned shards are terminal for the scheduler: idle channels
        # must see `finished` instead of polling forever.
        assert scheduler.lease("a") is None
        assert scheduler.finished

    def test_finished_only_after_every_shard_resolves(self):
        scheduler, _ = self.make(sizes=(1, 1), workers=("a",))
        assert not scheduler.finished
        shard = scheduler.lease("a")
        scheduler.complete(shard.shard_id, "a")
        assert not scheduler.finished  # one still queued
        shard = scheduler.lease("a")
        scheduler.complete(shard.shard_id, "a")
        assert scheduler.finished

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            ShardScheduler([Shard(0, (0,))], workers=[])

    def test_observer_sees_steal_done_requeue_and_poison(self):
        events = []
        scheduler, clock = self.make(
            sizes=(1, 1), workers=("a", "b"), lease_s=10.0, max_requeues=1,
            observer=events.append,
        )
        shard = scheduler.lease("b")
        scheduler.complete(shard.shard_id, "b")
        stolen = scheduler.lease("b")  # b's queue is dry: steals from a
        assert [event["kind"] for event in events] == ["shard_done", "steal"]
        assert events[1]["worker"] == "b" and events[1]["shard"] == stolen.shard_id
        clock.advance(11.0)
        scheduler.expire()  # requeue #1
        scheduler.lease("a")
        clock.advance(11.0)
        scheduler.expire()  # requeue #2 > max_requeues=1: poisoned
        assert [event["kind"] for event in events[2:]] == ["requeue", "poisoned"]

    def test_observer_errors_never_propagate(self):
        def broken(event):
            raise RuntimeError("observer bug")

        scheduler, _ = self.make(sizes=(1,), workers=("a",), observer=broken)
        shard = scheduler.lease("a")
        assert scheduler.complete(shard.shard_id, "a") is True  # no raise


# --------------------------------------------------------------------- #
# Transport: framing and --workers parsing
# --------------------------------------------------------------------- #


class TestFraming:
    def test_frame_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        a, b = SocketStream(left), SocketStream(right)
        message = ("shard", 3, ["payload"] * 10, ("127.0.0.1", 1234))
        a.send(message)
        assert b.recv(timeout=5.0) == message
        a.close(), b.close()

    def test_buffer_survives_a_timeout_mid_frame(self):
        left, right = socket.socketpair()
        stream = SocketStream(right)
        frame = dump_message(("done", 1, list(range(100))))
        left.sendall(frame[:10])  # header + partial payload
        with pytest.raises(StreamTimeout):
            stream.recv(timeout=0.05)
        left.sendall(frame[10:])  # the rest arrives later
        assert stream.recv(timeout=5.0) == ("done", 1, list(range(100)))
        left.close(), right.close()

    def test_peer_close_raises_stream_closed(self):
        left, right = socket.socketpair()
        stream = SocketStream(right)
        left.close()
        with pytest.raises(StreamClosed):
            stream.recv(timeout=1.0)
        right.close()

    def test_oversized_frame_length_fails_fast(self):
        header = dump_message(b"")[:8]
        assert load_frame_length(header) == len(pickle.dumps(b"", protocol=pickle.HIGHEST_PROTOCOL))
        import struct

        with pytest.raises(StreamClosed):
            load_frame_length(struct.pack("!Q", MAX_FRAME_BYTES + 1))


class TestParseWorkers:
    def test_integer_means_local_processes(self):
        assert parse_workers(3) == [WorkerSpec(host=None, port=0, count=3)]
        assert parse_workers("2") == [WorkerSpec(host=None, port=0, count=2)]

    def test_mixed_fleet_spec(self):
        assert parse_workers("2,node1:4,node2:7700:2") == [
            WorkerSpec(host=None, port=0, count=2),
            WorkerSpec(host="node1", port=7653, count=4),
            WorkerSpec(host="node2", port=7700, count=2),
        ]

    @pytest.mark.parametrize("bad", [0, -1, "0", "node1:0", "a:b:c:d", "", "node1:x"])
    def test_bad_specs_are_rejected_with_context(self, bad):
        with pytest.raises(ValueError):
            parse_workers(bad)


# --------------------------------------------------------------------- #
# Cache backends: memory LRU, server/client, spec parsing
# --------------------------------------------------------------------- #


class TestMemoryCache:
    def test_lru_eviction_order(self):
        cache = MemoryCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is MISS
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryCache(max_entries=0)

    def test_concurrent_puts_stay_consistent(self):
        cache = MemoryCache(max_entries=64)
        threads = [
            threading.Thread(
                target=lambda base=base: [
                    cache.put(f"k{base}-{i}", i) for i in range(50)
                ]
            )
            for base in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 64  # bounded, no corruption


class TestCacheServerClient:
    def test_round_trip_and_sharing(self):
        server = CacheServer(MemoryCache()).start()
        try:
            writer = CacheClient("127.0.0.1", server.port)
            reader = CacheClient("127.0.0.1", server.port)
            assert writer.ping()
            writer.put("k" * 64, {"cycles": 7})
            assert reader.get("k" * 64) == {"cycles": 7}  # other client sees it
            assert len(reader) == 1
            writer.close(), reader.close()
        finally:
            server.stop()

    def test_client_degrades_to_misses_instead_of_failing(self):
        server = CacheServer(MemoryCache()).start()
        client = CacheClient("127.0.0.1", server.port, timeout=1.0)
        client.put("a" * 64, 1)
        server.stop()
        client.close()
        assert client.get("a" * 64) is MISS  # degraded, not raising
        client.put("b" * 64, 2)  # no-op, no exception
        assert not client.ping()

    def test_degraded_client_backs_off_exponentially(self, monkeypatch):
        # Deterministic reconnect schedule: a fake clock and a connect()
        # stub that always refuses, counting the attempts.
        from repro.experiments.distributed import cacheserver as module

        class Clock:
            now = 0.0

            def __call__(self):
                return self.now

        clock = Clock()
        attempts = []

        def refusing_connect(host, port, timeout):
            attempts.append(clock.now)
            raise OSError("connection refused")

        monkeypatch.setattr(module, "connect", refusing_connect)
        client = CacheClient(
            "127.0.0.1", 1, retry_initial_s=0.05, retry_max_s=0.2,
            clock=clock,
        )
        assert client.get("a" * 64) is MISS  # first failure opens the outage
        assert client.degraded and client._backoff_s == 0.05
        assert client.get("a" * 64) is MISS  # inside the window: no attempt
        assert len(attempts) == 1
        for expected_backoff in (0.1, 0.2, 0.2, 0.2):  # doubles, then caps
            clock.now += client._backoff_s
            client.get("a" * 64)
            assert client._backoff_s == pytest.approx(expected_backoff)
        assert len(attempts) == 5  # one per expired window, none inside

    def test_client_warns_once_then_reconnects_to_restarted_server(
        self, caplog
    ):
        server = CacheServer(MemoryCache()).start()
        port = server.port
        client = CacheClient(
            "127.0.0.1", port, timeout=1.0, retry_initial_s=0.01
        )
        client.put("a" * 64, 1)
        server.stop()
        client.close()
        with caplog.at_level(
            logging.WARNING, logger="repro.experiments.distributed.cacheserver"
        ):
            assert client.get("a" * 64) is MISS  # outage begins
            assert client.get("a" * 64) is MISS  # still down, no second warning
        warnings = [
            record for record in caplog.records
            if record.levelno == logging.WARNING
        ]
        assert len(warnings) == 1
        assert "unreachable" in warnings[0].getMessage()

        restarted = CacheServer(MemoryCache(), port=port).start()
        try:
            restarted.backend.put("a" * 64, 42)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if client.get("a" * 64) == 42:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("client never reconnected to the restarted server")
            assert not client.degraded
            client.put("b" * 64, 2)  # puts work again too
            assert restarted.backend.get("b" * 64) == 2
            client.close()
        finally:
            restarted.stop()

    def test_server_fronts_a_disk_cache_too(self, tmp_path):
        disk = ResultCache(tmp_path)
        server = CacheServer(disk).start()
        try:
            client = CacheClient("127.0.0.1", server.port)
            client.put("f" * 64, [1, 2, 3])
            assert disk.get("f" * 64) == [1, 2, 3]
            client.close()
        finally:
            server.stop()


class TestParseCacheSpec:
    def test_forms(self, tmp_path):
        assert parse_cache_spec(None) is None
        assert parse_cache_spec("none") is None
        disk = parse_cache_spec(f"disk:{tmp_path}")
        assert isinstance(disk, ResultCache) and disk.root == tmp_path
        memory = parse_cache_spec("memory:16")
        assert isinstance(memory, MemoryCache) and memory.max_entries == 16
        client = parse_cache_spec("tcp://cachehost:9999")
        assert isinstance(client, CacheClient)
        assert (client.host, client.port) == ("cachehost", 9999)

    @pytest.mark.parametrize("bad", ["tape", "tcp://nohost", "tcp://h:x"])
    def test_bad_specs_are_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_cache_spec(bad)


# --------------------------------------------------------------------- #
# Worker-side shard execution
# --------------------------------------------------------------------- #


class TestRunShardSpecs:
    def test_plain_specs_run_through_the_serial_executor(self):
        assert run_shard_specs(demo_specs(3)) == [0, 3, 6]

    def test_batching_engine_shards_match_per_point_execution(self):
        settings = ExperimentSettings(
            engine="batch", warmup_cycles=50, measure_cycles=100
        )
        specs = EXPERIMENTS["fig5"].build_sweep(settings).specs()
        shard = plan_shards(specs)[0]
        shard_specs = [specs[index] for index in shard.indices]
        batched = run_shard_specs(shard_specs)
        serial = Executor(workers=1).run(shard_specs)
        assert pickle.dumps(batched) == pickle.dumps(serial)


# --------------------------------------------------------------------- #
# End to end: the distributed executor
# --------------------------------------------------------------------- #


class TestDistributedExecutor:
    def test_matches_serial_and_reports_shards(self):
        specs = demo_specs(6)
        executor = DistributedExecutor(workers=2)
        assert executor.run(specs) == Executor(workers=1).run(specs)
        report = executor.last_report
        assert report.total == 6 and report.computed == 6
        assert report.shards > 0 and report.per_worker
        assert sum(t["points"] for t in report.per_worker.values()) == 6
        assert "shards" in report.summary()
        assert report.worker_lines()

    def test_mixed_catalogue_is_byte_identical_to_serial(self, tmp_path):
        # The acceptance sweep: fig5 + workloads + topologies points, a
        # batching engine, and both a serial and a distributed run with
        # their own caches — results AND cache contents must match bytewise.
        settings = ExperimentSettings(
            engine="batch", warmup_cycles=50, measure_cycles=100
        )
        specs = []
        for name in ("fig5", "workloads", "topologies"):
            specs.extend(EXPERIMENTS[name].build_sweep(settings).specs())
        serial_cache = ResultCache(tmp_path / "serial")
        dist_cache = ResultCache(tmp_path / "dist")
        serial = BatchRunner(Executor(workers=1, cache=serial_cache)).run(specs)
        dist = DistributedExecutor(workers=2, cache=dist_cache).run(specs)
        # Point by point (a whole-list pickle would also compare pickle's
        # object-sharing memo, which legitimately differs across a wire).
        for left, right in zip(serial, dist):
            assert pickle.dumps(left) == pickle.dumps(right)
        serial_files = {
            path.relative_to(serial_cache.root): path.read_bytes()
            for path in serial_cache.root.rglob("*.pkl")
        }
        dist_files = {
            path.relative_to(dist_cache.root): path.read_bytes()
            for path in dist_cache.root.rglob("*.pkl")
        }
        assert serial_files == dist_files  # same keys, same bytes
        assert len(serial_files) == len(specs)

    def test_cache_hits_skip_the_fleet(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = demo_specs(4)
        DistributedExecutor(workers=2, cache=cache).run(specs)
        executor = DistributedExecutor(workers=2, cache=cache)
        assert executor.run(specs) == [0, 3, 6, 9]
        assert executor.last_report.cache_hits == 4
        assert executor.last_report.shards == 0  # nothing left to distribute

    def test_progress_reports_each_computed_point_once(self):
        seen = []
        specs = demo_specs(5)
        DistributedExecutor(workers=2).run(specs, progress=lambda s, v: seen.append(v))
        assert sorted(seen) == [0, 3, 6, 9, 12]

    def test_worker_exception_surfaces_with_its_traceback(self):
        specs = [ExperimentSpec("repro.experiments.demo:multiply", {"a": "x"})]
        with pytest.raises(ShardExecutionError, match="can't multiply|TypeError"):
            DistributedExecutor(workers=2).run(specs * 1)

    def test_killed_worker_requeues_its_shard_without_losing_results(self, tmp_path):
        # The first worker to execute the point SIGKILLs itself mid-shard;
        # the stream closes, the scheduler requeues the shard, and the
        # retry (which sees the flag file) completes it — no results lost,
        # none duplicated.
        flag = tmp_path / "crashed.flag"
        sweep = Sweep(
            "repro.experiments.demo:crash_once",
            grid={"a": (2.0, 3.0, 4.0)},
            base={"b": 10.0, "flag_path": str(flag)},
        )
        executor = DistributedExecutor(workers=2, lease_s=10.0, heartbeat_s=0.1)
        results = executor.run(sweep.specs())
        assert results == [20.0, 30.0, 40.0]
        assert executor.last_report.requeues >= 1
        assert flag.exists()  # the crash really happened

    def test_every_channel_dead_falls_back_to_serial(self, tmp_path):
        # With a single worker the crash kills the whole fleet; the
        # dispatcher's final serial pass computes what is left in-process.
        flag = tmp_path / "crashed.flag"
        sweep = Sweep(
            "repro.experiments.demo:crash_once",
            grid={"a": (5.0, 6.0)},
            base={"flag_path": str(flag)},
        )
        executor = DistributedExecutor(workers=1, lease_s=10.0, heartbeat_s=0.1)
        assert executor.run(sweep.specs()) == [5.0, 6.0]

    def test_remote_workers_over_loopback_tcp(self, tmp_path):
        server = WorkerServer(host="127.0.0.1", port=0).start()
        try:
            cache = ResultCache(tmp_path)
            specs = demo_specs(6)
            executor = DistributedExecutor(
                workers=f"127.0.0.1:{server.port}:2", cache=cache
            )
            assert executor.run(specs) == [0, 3, 6, 9, 12, 15]
            # The remote workers adopted the dispatcher's served cache, so
            # every computed point landed in the dispatcher-side store.
            assert len(cache) == 6
            names = set(executor.last_report.per_worker)
            assert any(name.startswith("127.0.0.1:") for name in names)
        finally:
            server.stop()

    def test_mixed_local_and_tcp_fleet(self):
        server = WorkerServer(host="127.0.0.1", port=0).start()
        try:
            executor = DistributedExecutor(
                workers=f"1,127.0.0.1:{server.port}:1"
            )
            assert executor.run(demo_specs(8)) == [0, 3, 6, 9, 12, 15, 18, 21]
            assert executor.last_report.workers == 2
        finally:
            server.stop()

    def test_unreachable_worker_does_not_hang_the_run(self):
        # One channel points at a dead port: it retires immediately and
        # the local channel absorbs the whole sweep.
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        executor = DistributedExecutor(
            workers=f"1,127.0.0.1:{dead_port}:1", connect_timeout=0.5
        )
        assert executor.run(demo_specs(4)) == [0, 3, 6, 9]


# --------------------------------------------------------------------- #
# CLI front-end
# --------------------------------------------------------------------- #


class TestDistributedCLI:
    def test_run_dispatch_prints_shard_and_worker_counters(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        code = main(
            ["run", "fig10", "--dispatch", "-w", "2",
             "--cache-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "shard" in out and "local-" in out

    def test_fleet_spec_without_dispatch_is_rejected(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["run", "fig10", "--workers", "node1:2", "--no-cache"])
        assert code == 1
        assert "--dispatch" in capsys.readouterr().out

    def test_bad_fleet_spec_is_rejected(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        code = main(
            ["run", "fig10", "--dispatch", "--workers", "node1:0",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 1
        assert "--workers" in capsys.readouterr().out

    def test_worker_command_rejects_bad_cache_spec(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["worker", "--cache", "tape"])
        assert code == 1
        assert "cache spec" in capsys.readouterr().out
