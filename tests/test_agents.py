"""Tests of the core-agent operation types and trace agents."""

import pytest

from repro.core.agents import (
    Barrier,
    Compute,
    CoreAgent,
    IdleAgent,
    Load,
    Store,
    TraceAgent,
    Use,
)


class TestOperationTypes:
    def test_compute_validation(self):
        Compute(0)
        Compute(5, muls=5)
        with pytest.raises(ValueError):
            Compute(-1)
        with pytest.raises(ValueError):
            Compute(1, muls=2)

    def test_operations_are_frozen(self):
        operation = Load(0x10, tag="a")
        with pytest.raises(Exception):
            operation.address = 0x20  # type: ignore[misc]

    def test_load_default_tag(self):
        assert Load(4).tag is None

    def test_barrier_default_id(self):
        assert Barrier().barrier_id == 0

    def test_use_holds_its_tag(self):
        assert Use("x").tag == "x"

    def test_store_address(self):
        assert Store(128).address == 128


class TestAgents:
    def test_trace_agent_from_list_replays_operations(self):
        operations = [Compute(1), Load(0, tag="a"), Use("a")]
        agent = TraceAgent(operations)
        assert list(agent.operations()) == operations

    def test_trace_agent_from_generator(self):
        def generator():
            yield Compute(2)
            yield Store(4)

        agent = TraceAgent(generator())
        kinds = [type(operation).__name__ for operation in agent.operations()]
        assert kinds == ["Compute", "Store"]

    def test_idle_agent_is_empty(self):
        assert list(IdleAgent().operations()) == []

    def test_base_agent_is_abstract(self):
        with pytest.raises(NotImplementedError):
            CoreAgent().operations()

    def test_on_load_data_hook_is_optional(self):
        TraceAgent([]).on_load_data("tag", 1)
