"""Trace record/replay, graph patterns and the energy attach.

The contract under test is the tentpole of the trace subsystem: a trace
recorded from *any* engine's flit log replays flit-for-flit identically
on every engine (replay draws no random numbers), malformed files fail
with messages that name the defect, the trace's content sha256 makes
sweep cache keys content-addressed, and the graph-derived patterns obey
the same scalar/batched draw-order contract as the rest of the
catalogue.
"""

from __future__ import annotations

import gzip
import hashlib
import json

import numpy as np
import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.workloads import (
    ScaleFreePattern,
    TraceFormatError,
    make_pattern,
    read_trace_header,
    record_trace,
    records_from_flit_log,
    trace_sha,
    write_trace,
)
from repro.workloads.registry import injector_entry, pattern_entry

ENGINES = ("legacy", "vector", "batch", "compiled")


def _run(cluster, load=0.3, pattern="uniform", injector="poisson",
         pattern_params=None, injector_params=None, seed=3,
         warmup=10, measure=40):
    simulation = cluster.traffic_simulation(
        load, pattern=pattern, injector=injector, seed=seed,
        pattern_params=pattern_params, injector_params=injector_params,
    )
    return simulation.run(
        warmup_cycles=warmup, measure_cycles=measure, record_flits=True
    )


def _record(tmp_path, engine="vector", name="t.trace.gz", seed=3):
    config = MemPoolConfig.tiny("toph")
    cluster = MemPoolCluster(config, engine=engine)
    result = _run(cluster, seed=seed)
    path = str(tmp_path / name)
    sha = record_trace(result, config, path)
    return config, path, sha, result


def _replay(config, path, sha, engine, extra_cycles=256):
    cluster = MemPoolCluster(config, engine=engine)
    header = read_trace_header(path)
    replay = {"path": path, "sha": sha}
    return _run(
        cluster,
        pattern="trace", pattern_params=replay,
        injector="trace", injector_params=replay,
        warmup=0, measure=int(header["cycles"]) + extra_cycles,
    )


class TestRecordReplayIdentity:
    """A recorded trace replays identically on all four engines."""

    def test_vector_recording_replays_identically_everywhere(self, tmp_path):
        config, path, sha, recording = _record(tmp_path, engine="vector")
        logs = {
            engine: _replay(config, path, sha, engine).flit_log
            for engine in ENGINES
        }
        reference = logs["legacy"]
        assert len(reference) == len(recording.flit_log)
        for engine in ENGINES[1:]:
            assert logs[engine] == reference, engine

    def test_replay_requests_match_the_recording(self, tmp_path):
        config, path, sha, recording = _record(tmp_path)
        replayed = _replay(config, path, sha, "legacy")
        # Same generation schedule: (created, core, bank) triples equal.
        assert records_from_flit_log(replayed.flit_log) == (
            records_from_flit_log(recording.flit_log)
        )

    def test_recorded_bytes_are_engine_independent(self, tmp_path):
        _, _, sha_vector, _ = _record(tmp_path, engine="vector", name="a.gz")
        _, _, sha_legacy, _ = _record(tmp_path, engine="legacy", name="b.gz")
        assert sha_vector == sha_legacy

    def test_records_from_flit_log_is_generation_ordered(self, tmp_path):
        _, _, _, recording = _record(tmp_path)
        records = records_from_flit_log(recording.flit_log)
        assert records == sorted(records, key=lambda r: (r[0], r[1]))


class TestTraceFormatErrors:
    """Malformed or stale files fail with messages naming the defect."""

    def test_not_gzip(self, tmp_path):
        path = tmp_path / "bad.trace.gz"
        path.write_text("plain text, not gzip")
        with pytest.raises(TraceFormatError, match="not a readable gzip"):
            read_trace_header(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="does not exist"):
            read_trace_header(str(tmp_path / "nope.trace.gz"))

    def test_wrong_format_field(self, tmp_path):
        path = tmp_path / "alien.trace.gz"
        with gzip.open(path, "wt") as stream:
            stream.write(json.dumps({"format": "alien", "version": 1}) + "\n")
        with pytest.raises(TraceFormatError, match="not a 'mempool-trace'"):
            read_trace_header(str(path))

    def test_future_version(self, tmp_path):
        config, path, _, _ = _record(tmp_path)
        lines = gzip.open(path, "rt").read().split("\n")
        header = json.loads(lines[0])
        header["version"] = 99
        lines[0] = json.dumps(header)
        with gzip.open(path, "wt") as stream:
            stream.write("\n".join(lines))
        with pytest.raises(TraceFormatError, match="schema version 99"):
            read_trace_header(str(path))

    def test_truncated_payload(self, tmp_path):
        config, path, sha, _ = _record(tmp_path)
        lines = gzip.open(path, "rt").read().rstrip("\n").split("\n")
        with gzip.open(path, "wt") as stream:
            stream.write("\n".join(lines[:-3]) + "\n")
        with pytest.raises(TraceFormatError, match="header promises"):
            make_pattern("trace", config, path=str(path))

    def test_modified_payload_fails_verification(self, tmp_path):
        config, path, sha, _ = _record(tmp_path)
        lines = gzip.open(path, "rt").read().rstrip("\n").split("\n")
        lines[1] = "[0, 0, 0]"
        with gzip.open(path, "wt") as stream:
            stream.write("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match="failed content verification"):
            make_pattern("trace", config, path=str(path))

    def test_non_integer_record(self, tmp_path):
        path = str(tmp_path / "r.trace.gz")
        sha = write_trace(path, [(0, 0, 0)], num_cores=16, num_banks=64)
        lines = gzip.open(path, "rt").read().rstrip("\n").split("\n")
        bad = json.dumps([0, 0, 0.5])
        header = json.loads(lines[0])
        header["sha256"] = hashlib.sha256(bad.encode()).hexdigest()
        with gzip.open(path, "wt") as stream:
            stream.write(json.dumps(header) + "\n" + bad + "\n")
        with pytest.raises(TraceFormatError, match="record 0 must be a"):
            make_pattern("trace", MemPoolConfig.tiny("toph"), path=path)

    def test_sha_pin_detects_rerecorded_file(self, tmp_path):
        config, path, sha, _ = _record(tmp_path, seed=3)
        other_config = MemPoolConfig.tiny("toph")
        other_cluster = MemPoolCluster(other_config, engine="vector")
        record_trace(_run(other_cluster, seed=4), other_config, path, force=True)
        with pytest.raises(ValueError, match="the file changed since"):
            make_pattern("trace", config, path=path, sha=sha)

    def test_cluster_size_mismatch(self, tmp_path):
        config, path, sha, _ = _record(tmp_path)
        scaled = MemPoolConfig.scaled("toph")
        with pytest.raises(ValueError, match="sizes may not"):
            make_pattern("trace", scaled, path=path)

    def test_exhaustion_names_the_pairing_contract(self, tmp_path):
        config, path, sha, _ = _record(tmp_path)
        pattern = make_pattern("trace", config, path=path)
        with pytest.raises(ValueError, match="pair pattern='trace'"):
            while True:
                pattern.destination(0)

    def test_overwrite_refused_without_force(self, tmp_path):
        path = str(tmp_path / "w.trace.gz")
        write_trace(path, [(0, 1, 2)], num_cores=16, num_banks=64)
        with pytest.raises(FileExistsError, match="force"):
            write_trace(path, [(0, 1, 2)], num_cores=16, num_banks=64)
        # force=True overwrites and the sha round-trips.
        sha = write_trace(
            path, [(0, 1, 2)], num_cores=16, num_banks=64, force=True
        )
        assert trace_sha(path) == sha


class TestRegistryIntegration:
    """The replay components are catalogue citizens with required params."""

    def test_trace_pattern_requires_path(self):
        entry = pattern_entry("trace")
        assert entry.required == ("path",)
        with pytest.raises(ValueError, match="requires parameter"):
            entry.validate({})
        assert injector_entry("trace").required == ("path",)

    def test_make_pattern_without_path_raises(self):
        with pytest.raises(ValueError, match="requires parameter"):
            make_pattern("trace", MemPoolConfig.tiny("toph"))

    def test_catalogue_sweeps_skip_required_entries(self):
        from repro.evaluation.workloads import (
            default_catalogue_injectors,
            default_catalogue_patterns,
        )

        assert "trace" not in default_catalogue_patterns()
        assert "trace" not in default_catalogue_injectors()
        assert "scale_free" in default_catalogue_patterns()

    def test_fuzz_strategies_skip_required_entries(self):
        from repro.validation.fuzz import fuzzable_injectors, fuzzable_patterns

        assert "trace" not in fuzzable_patterns()
        assert "trace" not in fuzzable_injectors()
        assert "degree_skewed" in fuzzable_patterns()


class TestCacheKeys:
    """Sweep cache keys are content-addressed by the trace sha."""

    def test_different_traces_produce_different_spec_keys(self, tmp_path):
        from repro.experiments.spec import ExperimentSpec

        def spec_for(path, sha):
            return ExperimentSpec(
                runner="repro.evaluation.traces:simulate_trace_point",
                params={"topology": "mesh", "trace": "same-label",
                        "trace_sha": sha, "load": 0.25},
            )

        _, path_a, sha_a, _ = _record(tmp_path, name="a.trace.gz", seed=1)
        _, path_b, sha_b, _ = _record(tmp_path, name="b.trace.gz", seed=2)
        assert sha_a != sha_b
        # Even with an identical path label, the sha keeps keys distinct.
        assert spec_for(path_a, sha_a).key != spec_for(path_b, sha_b).key

    def test_traces_sweep_embeds_the_header_sha(self, tmp_path):
        from repro.evaluation.settings import ExperimentSettings
        from repro.evaluation.traces import traces_sweep

        _, path, sha, _ = _record(tmp_path)
        # tiny traces cannot replay on the scaled default cluster, but the
        # sweep expansion itself only reads the header.
        sweep = traces_sweep(
            ExperimentSettings(trace=path), topologies=("mesh",)
        )
        (spec,) = sweep.specs()
        assert spec.params["trace_sha"] == sha
        assert spec.params["energy"] is True
        assert spec.params["warmup_cycles"] == 0


class TestGraphPatterns:
    """scale_free / degree_skewed: cross-engine + draw-order contracts."""

    @pytest.mark.parametrize("exponent", [0.0, 0.8, 2.0, 3.5])
    def test_scale_free_cross_engine_equivalence(self, exponent):
        config = MemPoolConfig.tiny("toph")
        logs = {}
        for engine in ENGINES:
            cluster = MemPoolCluster(config, engine=engine)
            logs[engine] = _run(
                cluster, pattern="scale_free",
                pattern_params={"exponent": exponent},
            ).flit_log
        for engine in ENGINES[1:]:
            assert logs[engine] == logs["legacy"], (engine, exponent)

    @pytest.mark.parametrize("params", [{"m": 1, "beta": 0.5},
                                        {"m": 3, "beta": 1.5}])
    def test_degree_skewed_cross_engine_equivalence(self, params):
        config = MemPoolConfig.tiny("toph")
        logs = {}
        for engine in ("legacy", "vector"):
            cluster = MemPoolCluster(config, engine=engine)
            logs[engine] = _run(
                cluster, pattern="degree_skewed", pattern_params=params
            ).flit_log
        assert logs["vector"] == logs["legacy"]

    def test_scale_free_batched_matches_scalar_draws(self):
        config = MemPoolConfig.tiny("toph")
        scalar = ScaleFreePattern(config, exponent=2.0, seed=7)
        batched = ScaleFreePattern(config, exponent=2.0, seed=7)
        cores = np.arange(config.num_cores)
        for _ in range(5):
            expected = [scalar.destination(int(core)) for core in cores]
            assert batched.destinations(cores).tolist() == expected

    def test_scale_free_exponent_skews_popularity(self):
        config = MemPoolConfig.tiny("toph")
        flat = ScaleFreePattern(config, exponent=0.0, seed=0)
        skewed = ScaleFreePattern(config, exponent=3.0, seed=0)

        def top_share(pattern):
            counts = np.zeros(config.num_banks)
            for draw in range(400):
                counts[pattern.destination(draw % config.num_cores)] += 1
            return np.sort(counts)[-4:].sum() / counts.sum()

        assert top_share(skewed) > top_share(flat) + 0.2

    def test_degree_skewed_graph_is_seed_deterministic(self):
        config = MemPoolConfig.tiny("toph")
        first = make_pattern("degree_skewed", config, seed=5, m=2, beta=1.0)
        second = make_pattern("degree_skewed", config, seed=5, m=2, beta=1.0)
        draws_a = [first.destination(core % 16) for core in range(64)]
        draws_b = [second.destination(core % 16) for core in range(64)]
        assert draws_a == draws_b


class TestEnergyAttach:
    """The wire-energy summary is deterministic and engine-independent."""

    def test_energy_attaches_and_is_consistent(self):
        from repro.energy.traffic import traffic_energy

        config = MemPoolConfig.tiny("toph")
        cluster = MemPoolCluster(config, engine="legacy")
        result = _run(cluster)
        summary = traffic_energy(cluster, result)
        assert summary.completed_requests == result.completed_requests
        assert summary.total_pj > 0
        assert summary.per_request_pj == pytest.approx(
            summary.total_pj / summary.completed_requests
        )

    def test_energy_is_engine_independent(self):
        from repro.energy.traffic import traffic_energy

        config = MemPoolConfig.tiny("toph")
        totals = set()
        for engine in ENGINES:
            cluster = MemPoolCluster(config, engine=engine)
            totals.add(traffic_energy(cluster, _run(cluster)).total_pj)
        assert len(totals) == 1

    def test_point_function_energy_flag(self):
        from repro.evaluation.fig5 import simulate_fig5_point

        base = dict(topology="toph", load=0.1, warmup_cycles=10,
                    measure_cycles=30)
        without = simulate_fig5_point(**base)
        with_energy = simulate_fig5_point(**base, energy=True)
        assert without.energy is None
        assert with_energy.energy is not None
        assert with_energy.energy.completed_requests == (
            with_energy.completed_requests
        )


class TestTraceCli:
    """`python -m repro.experiments trace record|info` behaviour."""

    @pytest.fixture()
    def record_args(self, tmp_path):
        path = str(tmp_path / "cli.trace.gz")
        return path, ["trace", "record", path, "--warmup", "5",
                      "--measure", "25", "--engine", "vector"]

    def test_record_info_and_force(self, record_args, capsys):
        from repro.experiments.__main__ import main

        path, args = record_args
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "sha256" in first
        # Second record without --force is refused with a clear message.
        assert main(args) == 1
        assert "--force" in capsys.readouterr().out
        assert main(args + ["--force"]) == 0
        capsys.readouterr()
        assert main(["trace", "info", path]) == 0
        info = capsys.readouterr().out
        assert "payload verified" in info
        assert trace_sha(path) in info

    def test_info_on_malformed_file(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = tmp_path / "junk.trace.gz"
        path.write_text("junk")
        assert main(["trace", "info", str(path)]) == 1
        assert "not a readable gzip" in capsys.readouterr().out
