"""Tests of the RV32IM assembler."""

import pytest

from repro.snitch.assembler import AssemblerError, assemble
from repro.snitch.registers import RegisterFile, register_index


class TestRegisterNames:
    def test_abi_names(self):
        assert register_index("zero") == 0
        assert register_index("ra") == 1
        assert register_index("sp") == 2
        assert register_index("a0") == 10
        assert register_index("t6") == 31

    def test_x_names(self):
        assert register_index("x0") == 0
        assert register_index("x31") == 31

    def test_invalid_names_rejected(self):
        for name in ("x32", "b3", "", "a8"):
            with pytest.raises(ValueError):
                register_index(name)

    def test_register_file_x0_is_hardwired(self):
        registers = RegisterFile()
        registers.write(0, 123)
        assert registers.read(0) == 0

    def test_register_file_wraps_to_32_bits(self):
        registers = RegisterFile()
        registers.write(5, -1)
        assert registers.read(5) == -1
        assert registers.read_unsigned(5) == 0xFFFFFFFF

    def test_dump_uses_abi_names(self):
        registers = RegisterFile()
        registers.write(10, 42)
        assert RegisterFile().dump()["a0"] == 0
        assert registers.dump()["a0"] == 42


class TestBasicAssembly:
    def test_r_type(self):
        program = assemble("add a0, a1, a2")
        instruction = program.instructions[0]
        assert instruction.mnemonic == "add"
        assert (instruction.rd, instruction.rs1, instruction.rs2) == (10, 11, 12)

    def test_i_type_with_negative_immediate(self):
        instruction = assemble("addi t0, t1, -42").instructions[0]
        assert instruction.imm == -42

    def test_hex_immediates(self):
        instruction = assemble("andi t0, t0, 0xff").instructions[0]
        assert instruction.imm == 255

    def test_load_store_operands(self):
        program = assemble("lw a0, 8(sp)\nsw a1, -4(s0)")
        load, store = program.instructions
        assert (load.rd, load.rs1, load.imm) == (10, 2, 8)
        assert (store.rs2, store.rs1, store.imm) == (11, 8, -4)

    def test_atomic_operand(self):
        instruction = assemble("amoadd.w a0, a1, (a2)").instructions[0]
        assert (instruction.rd, instruction.rs2, instruction.rs1) == (10, 11, 12)

    def test_atomic_with_offset_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("amoadd.w a0, a1, 4(a2)")

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("""
        # a comment
        add a0, a0, a1   // trailing comment
        ; another comment style
        """)
        assert len(program) == 1

    def test_unknown_instruction_reports_line(self):
        with pytest.raises(AssemblerError, match=":2:"):
            assemble("nop\nfrobnicate a0, a1")

    def test_missing_operand_reported(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1")

    def test_bad_register_reported(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1, q7")


class TestLabelsAndBranches:
    def test_labels_resolve_to_byte_addresses(self):
        program = assemble("""
        start:
            nop
            nop
        end:
            nop
        """)
        assert program.address_of("start") == 0
        assert program.address_of("end") == 8

    def test_branch_targets_are_absolute(self):
        program = assemble("""
        loop:
            addi a0, a0, -1
            bnez a0, loop
        """)
        branch = program.instructions[1]
        assert branch.mnemonic == "bne"
        assert branch.imm == 0

    def test_forward_references(self):
        program = assemble("""
            beqz a0, skip
            nop
        skip:
            nop
        """)
        assert program.instructions[0].imm == 8

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x:\nnop\nx:\nnop")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere")

    def test_li_la_always_two_instructions(self):
        program = assemble("li a0, 5\nla a1, 0x12345")
        assert len(program) == 4
        assert program.instructions[0].mnemonic == "lui"
        assert program.instructions[1].mnemonic == "addi"

    def test_label_after_li_accounts_for_expansion(self):
        program = assemble("""
            li a0, 1
        target:
            nop
            j target
        """)
        assert program.address_of("target") == 8
        assert program.instructions[-1].imm == 8


class TestPseudoInstructions:
    def test_nop_mv_ret(self):
        program = assemble("nop\nmv a0, a1\nret")
        assert [i.mnemonic for i in program.instructions] == ["addi", "addi", "jalr"]
        assert program.instructions[2].rs1 == 1

    def test_branch_pseudo_swaps(self):
        program = assemble("loop:\nble a0, a1, loop\nbgt a2, a3, loop")
        ble, bgt = program.instructions
        assert ble.mnemonic == "bge" and (ble.rs1, ble.rs2) == (11, 10)
        assert bgt.mnemonic == "blt" and (bgt.rs1, bgt.rs2) == (13, 12)

    def test_neg_not_seqz_snez(self):
        program = assemble("neg a0, a1\nnot a2, a3\nseqz a4, a5\nsnez a6, a7")
        assert [i.mnemonic for i in program.instructions] == ["sub", "xori", "sltiu", "sltu"]

    def test_call_and_j(self):
        program = assemble("start:\nj start\ncall start")
        assert program.instructions[0].rd == 0
        assert program.instructions[1].rd == 1


class TestSymbols:
    def test_external_symbols_in_immediates(self):
        program = assemble("li a0, buffer", symbols={"buffer": 0x1234})
        # lui + addi must reconstruct the value.
        upper = program.instructions[0].imm << 12
        assert upper + program.instructions[1].imm == 0x1234

    def test_symbol_plus_offset(self):
        program = assemble("li a0, buffer+8", symbols={"buffer": 0x100})
        assert (program.instructions[0].imm << 12) + program.instructions[1].imm == 0x108

    def test_unknown_symbol_rejected(self):
        with pytest.raises(AssemblerError, match="resolve"):
            assemble("li a0, missing_symbol")

    def test_program_at_and_bounds(self):
        program = assemble("nop\nnop")
        assert program.at(4).mnemonic == "addi"
        with pytest.raises(ValueError):
            program.at(8)
        with pytest.raises(ValueError):
            program.at(2)
