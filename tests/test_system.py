"""Tests of the execution-driven system simulator (barrier, run loop, results)."""

import pytest

from repro.core.agents import Barrier, Compute, IdleAgent, Load, TraceAgent, Use
from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.core.coremodel import CoreStats
from repro.core.system import (
    BarrierMismatchError,
    GlobalBarrier,
    MemPoolSystem,
    SystemResult,
    run_program,
)


class TestGlobalBarrier:
    def test_releases_only_when_everyone_arrived(self):
        barrier = GlobalBarrier({0, 1, 2})
        barrier.arrive(0)
        barrier.arrive(1)
        assert not barrier.try_release()
        barrier.arrive(2)
        assert barrier.try_release()
        assert barrier.episodes == 1

    def test_non_participant_rejected(self):
        barrier = GlobalBarrier({0})
        with pytest.raises(ValueError):
            barrier.arrive(3)

    def test_reusable_across_episodes(self):
        barrier = GlobalBarrier({0, 1})
        for _ in range(3):
            barrier.arrive(0)
            barrier.arrive(1)
            assert barrier.try_release()
        assert barrier.episodes == 3

    def test_matching_barrier_ids_release(self):
        barrier = GlobalBarrier({0, 1})
        barrier.arrive(0, barrier_id=7)
        barrier.arrive(1, barrier_id=7)
        assert barrier.try_release()
        assert barrier.episodes == 1

    def test_mismatched_barrier_ids_raise(self):
        barrier = GlobalBarrier({0, 1})
        barrier.arrive(0, barrier_id=1)
        barrier.arrive(1, barrier_id=2)
        with pytest.raises(BarrierMismatchError):
            barrier.try_release()

    def test_waiting_counts_arrived_cores(self):
        barrier = GlobalBarrier({0, 1, 2})
        barrier.arrive(0)
        barrier.arrive(1)
        assert barrier.waiting == 2


class TestSystemRun:
    def test_all_cores_execute_their_programs(self, toph_tiny_cluster):
        config = toph_tiny_cluster.config
        agents = {
            core: TraceAgent([Compute(core + 1)]) for core in range(config.num_cores)
        }
        result = MemPoolSystem(toph_tiny_cluster, agents).run()
        assert result.active_cores == config.num_cores
        assert result.total.compute_cycles == sum(range(1, config.num_cores + 1))

    def test_idle_cores_do_not_participate_in_barriers(self, toph_tiny_cluster):
        agents = {
            0: TraceAgent([Barrier(), Compute(1)]),
            1: TraceAgent([Barrier(), Compute(1)]),
        }
        result = MemPoolSystem(toph_tiny_cluster, agents).run()
        assert result.barrier_episodes == 1

    def test_explicit_barrier_participants(self, toph_tiny_cluster):
        agents = {0: TraceAgent([Barrier()]), 1: TraceAgent([Compute(1)])}
        system = MemPoolSystem(toph_tiny_cluster, agents, barrier_participants={0})
        result = system.run()
        assert result.barrier_episodes == 1

    def test_run_program_helper(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("topx"))
        result = run_program(cluster, {0: TraceAgent([Compute(5)])})
        assert result.cycles >= 5

    def test_result_counts_network_traffic(self, toph_tiny_cluster):
        address = toph_tiny_cluster.layout.stack_pointer(0) - 4
        agents = {0: TraceAgent([Load(address, tag="a"), Use("a")])}
        result = MemPoolSystem(toph_tiny_cluster, agents).run()
        assert result.injected_requests == 1
        assert result.completed_requests == 1

    def test_ipc_property(self, toph_tiny_cluster):
        agents = {0: TraceAgent([Compute(10)])}
        result = MemPoolSystem(toph_tiny_cluster, agents).run()
        assert 0 < result.ipc <= 1.0

    def test_deadlock_report_mentions_unfinished_cores(self, toph_tiny_cluster):
        agents = {0: TraceAgent([Barrier()]), 1: TraceAgent([Compute(1), Barrier(), Barrier()])}
        system = MemPoolSystem(toph_tiny_cluster, agents)
        with pytest.raises(RuntimeError, match="unfinished"):
            system.run(max_cycles=200)

    def test_empty_system_finishes_immediately(self, toph_tiny_cluster):
        result = MemPoolSystem(toph_tiny_cluster, {}).run()
        assert result.cycles <= 1
        assert result.instructions == 0

    def test_idle_agent_generates_no_work(self):
        agent = IdleAgent()
        assert list(agent.operations()) == []


class TestSystemResultValidation:
    """Degenerate simulation outcomes are rejected at construction."""

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            SystemResult(cycles=-1, core_stats=[])

    def test_activity_over_zero_cycles_rejected(self):
        stats = CoreStats(compute_cycles=4)
        with pytest.raises(ValueError, match="zero cycles"):
            SystemResult(cycles=0, core_stats=[stats])

    def test_requests_over_zero_cycles_rejected(self):
        with pytest.raises(ValueError, match="zero cycles"):
            SystemResult(cycles=0, core_stats=[], injected_requests=3)

    def test_ipc_raises_on_zero_cycle_result(self):
        result = SystemResult(cycles=0, core_stats=[])
        with pytest.raises(ValueError, match="IPC is undefined"):
            result.ipc

    def test_ipc_of_idle_run_is_zero(self, toph_tiny_cluster):
        result = MemPoolSystem(toph_tiny_cluster, {}).run()
        assert result.instructions == 0
        assert result.ipc == 0.0
