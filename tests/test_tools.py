"""The CI gate's own tooling: bench_report regression math and docs_lint.

``tools/bench_report.py`` decides whether a benchmark run fails CI and
``tools/docs_lint.py`` is the offline docstring linter behind
``make docs-lint`` — neither had tests, so a bug in the *gate* (a wrong
regression floor, a swallowed exit code) could silently wave regressions
through.  These tests pin the gate math, the missing-file behaviour and
the exit codes of both tools.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import bench_report  # noqa: E402  (tools/ is not a package)
import docs_lint  # noqa: E402


def _engine_payload(speedup, end_to_end=2.0):
    return {
        "benchmark": "test sweep",
        "speedup": speedup,
        "end_to_end_speedup": end_to_end,
        "legacy": {"advance_cycles_per_sec": 100},
        "vector": {"advance_cycles_per_sec": 300},
    }


class TestBenchReportCompare:
    """The speedup-regression comparison itself."""

    def test_equal_speedup_passes(self):
        ok, report = bench_report.compare(
            _engine_payload(3.0), _engine_payload(3.0), threshold=0.2
        )
        assert ok
        assert "OK" in report

    def test_regression_beyond_threshold_fails(self):
        # Baseline 3.0, floor at 20% is 2.4 — a 2.3 measurement regressed.
        ok, report = bench_report.compare(
            _engine_payload(2.3), _engine_payload(3.0), threshold=0.2
        )
        assert not ok
        assert "REGRESSION" in report

    def test_regression_floor_is_inclusive(self):
        # Exactly at the floor (4.0 * (1 - 0.25) == 3.0, exact in binary).
        ok, _ = bench_report.compare(
            _engine_payload(3.0), _engine_payload(4.0), threshold=0.25
        )
        assert ok

    def test_improvement_passes(self):
        ok, _ = bench_report.compare(
            _engine_payload(4.0), _engine_payload(3.0), threshold=0.2
        )
        assert ok


class TestBatchReport:
    """The SimBatch section of the report."""

    def test_absent_section_is_none(self):
        assert bench_report.batch_report(_engine_payload(3.0), None, 0.2) is None

    def test_no_baseline_is_informational(self):
        current = {"batch": {"speedup": 2.4, "points": 33}}
        ok, report = bench_report.batch_report(current, _engine_payload(3.0), 0.2)
        assert ok
        assert "informational" in report

    def test_gated_against_baseline(self):
        current = {"batch": {"speedup": 1.5}}
        baseline = {"batch": {"speedup": 2.4}}
        ok, report = bench_report.batch_report(current, baseline, 0.2)
        assert not ok
        assert "REGRESSION" in report
        ok, _ = bench_report.batch_report(
            {"batch": {"speedup": 2.0}}, baseline, 0.2
        )
        assert ok  # floor is 2.4 * 0.8 = 1.92


class TestCompiledReport:
    """The compiled-kernel section of the report (jit-mode-aware gate)."""

    def test_absent_section_is_none(self):
        assert bench_report.compiled_report(_engine_payload(3.0), None, 0.2) is None

    def test_no_baseline_is_informational(self):
        current = {"compiled": {"speedup_vs_vector": 0.6, "jit": False}}
        ok, report = bench_report.compiled_report(current, _engine_payload(3.0), 0.2)
        assert ok
        assert "informational" in report
        assert "pure-Python" in report

    def test_gated_against_same_jit_mode(self):
        baseline = {"compiled": {"speedup_vs_vector": 12.0, "jit": True}}
        ok, report = bench_report.compiled_report(
            {"compiled": {"speedup_vs_vector": 8.0, "jit": True}}, baseline, 0.2
        )
        assert not ok  # floor is 12.0 * 0.8 = 9.6
        assert "REGRESSION" in report
        ok, _ = bench_report.compiled_report(
            {"compiled": {"speedup_vs_vector": 9.7, "jit": True}}, baseline, 0.2
        )
        assert ok

    def test_jit_mode_mismatch_is_never_gated(self):
        # A pure-Python fallback run must not be compared to a JIT baseline
        # (or vice versa): the ratio difference is the backend, not a
        # regression.
        baseline = {"compiled": {"speedup_vs_vector": 12.0, "jit": True}}
        ok, report = bench_report.compiled_report(
            {"compiled": {"speedup_vs_vector": 0.5, "jit": False}}, baseline, 0.2
        )
        assert ok
        assert "not comparable" in report
        flipped = {"compiled": {"speedup_vs_vector": 0.5, "jit": False}}
        ok, report = bench_report.compiled_report(
            {"compiled": {"speedup_vs_vector": 12.0, "jit": True}}, flipped, 0.2
        )
        assert ok
        assert "not comparable" in report

    def test_compiled_regression_alone_exits_one(self, tmp_path):
        current = _engine_payload(3.0)
        current["compiled"] = {"speedup_vs_vector": 5.0, "jit": True}
        baseline = _engine_payload(3.0)
        baseline["compiled"] = {"speedup_vs_vector": 12.0, "jit": True}
        current_path = tmp_path / "current.json"
        baseline_path = tmp_path / "baseline.json"
        current_path.write_text(json.dumps(current))
        baseline_path.write_text(json.dumps(baseline))
        code = bench_report.main(
            ["--current", str(current_path), "--baseline", str(baseline_path)]
        )
        assert code == 1


def _distributed_payload(speedup, cpus=4):
    return {
        "distributed": {
            "benchmark": "cold-cache fig5 sweep on 4 local workers vs 1",
            "points": 33,
            "workers": 4,
            "cpus": cpus,
            "serial_seconds": 4.0,
            "fleet_seconds": 4.0 / speedup,
            "speedup_4v1": speedup,
        }
    }


class TestDistributedReport:
    """The distributed-scaling section of the report (cpu-aware gate)."""

    def test_absent_section_is_none(self):
        assert bench_report.distributed_report({}, None, 0.2) is None
        assert bench_report.distributed_report(None, None, 0.2) is None

    def test_no_baseline_is_informational(self):
        ok, report = bench_report.distributed_report(
            _distributed_payload(3.4), None, 0.2
        )
        assert ok
        assert "informational" in report
        assert "3.40x" in report

    def test_gated_against_same_cpu_count(self):
        baseline = _distributed_payload(3.5, cpus=4)
        ok, report = bench_report.distributed_report(
            _distributed_payload(2.0, cpus=4), baseline, 0.2
        )
        assert not ok  # floor is 3.5 * 0.8 = 2.8
        assert "REGRESSION" in report
        ok, _ = bench_report.distributed_report(
            _distributed_payload(2.9, cpus=4), baseline, 0.2
        )
        assert ok

    def test_cpu_count_mismatch_is_never_gated(self):
        # A 1-core smoke container legitimately measures ~1x: parallel
        # speedup is bounded by the cores, not the scheduler under test.
        baseline = _distributed_payload(3.5, cpus=4)
        ok, report = bench_report.distributed_report(
            _distributed_payload(0.8, cpus=1), baseline, 0.2
        )
        assert ok
        assert "not comparable" in report

    def test_distributed_regression_alone_exits_one(self, tmp_path, monkeypatch):
        current_path = tmp_path / "current.json"
        baseline_path = tmp_path / "baseline.json"
        current_path.write_text(json.dumps(_engine_payload(3.0)))
        baseline_path.write_text(json.dumps(_engine_payload(3.0)))
        experiments = tmp_path / "BENCH_experiments.json"
        experiments_base = tmp_path / "BENCH_experiments.baseline.json"
        experiments.write_text(json.dumps(_distributed_payload(1.5, cpus=4)))
        experiments_base.write_text(json.dumps(_distributed_payload(3.5, cpus=4)))
        monkeypatch.setattr(bench_report, "EXPERIMENTS_CURRENT", experiments)
        monkeypatch.setattr(bench_report, "EXPERIMENTS_BASELINE", experiments_base)
        code = bench_report.main(
            ["--current", str(current_path), "--baseline", str(baseline_path)]
        )
        assert code == 1


class TestTopologiesReport:
    """The per-topology section of the report."""

    def test_absent_section_is_none(self):
        assert bench_report.topologies_report(_engine_payload(3.0), None, 0.2) is None

    def test_no_baseline_entry_is_informational(self):
        current = {"topologies": {"mesh": {"speedup": 2.5, "compile_seconds": 0.1}}}
        ok, report = bench_report.topologies_report(current, _engine_payload(3.0), 0.2)
        assert ok
        assert "informational" in report

    def test_each_family_is_gated_independently(self):
        current = {
            "topologies": {
                "mesh": {"speedup": 2.5},
                "torus": {"speedup": 1.0},
            }
        }
        baseline = {
            "topologies": {
                "mesh": {"speedup": 2.6},
                "torus": {"speedup": 3.0},
            }
        }
        ok, report = bench_report.topologies_report(current, baseline, 0.2)
        assert not ok  # torus regressed even though mesh is fine
        assert "REGRESSION" in report
        assert "OK" in report

    def test_benchmark_key_is_not_a_family(self):
        current = {"topologies": {"benchmark": "sweep", "mesh": {"speedup": 2.5}}}
        baseline = {"topologies": {"mesh": {"speedup": 2.5}}}
        ok, report = bench_report.topologies_report(current, baseline, 0.2)
        assert ok
        assert "sweep" in report


class TestBenchReportMain:
    """Exit codes of the command-line entry point."""

    def test_missing_current_is_not_an_error(self, tmp_path, capsys):
        code = bench_report.main(
            ["--current", str(tmp_path / "missing.json"),
             "--baseline", str(tmp_path / "also-missing.json")]
        )
        assert code == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_missing_baseline_fails(self, tmp_path, capsys):
        current = tmp_path / "current.json"
        current.write_text(json.dumps(_engine_payload(3.0)))
        code = bench_report.main(
            ["--current", str(current),
             "--baseline", str(tmp_path / "missing.json")]
        )
        assert code == 1
        assert "no committed baseline" in capsys.readouterr().out

    def test_ok_run_exits_zero(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(_engine_payload(3.1)))
        baseline.write_text(json.dumps(_engine_payload(3.0)))
        assert bench_report.main(
            ["--current", str(current), "--baseline", str(baseline)]
        ) == 0

    def test_engine_regression_exits_one(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(_engine_payload(2.0)))
        baseline.write_text(json.dumps(_engine_payload(3.0)))
        assert bench_report.main(
            ["--current", str(current), "--baseline", str(baseline)]
        ) == 1

    def test_batch_regression_alone_exits_one(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current_payload = _engine_payload(3.0)
        current_payload["batch"] = {"speedup": 1.0}
        baseline_payload = _engine_payload(3.0)
        baseline_payload["batch"] = {"speedup": 2.4}
        current.write_text(json.dumps(current_payload))
        baseline.write_text(json.dumps(baseline_payload))
        assert bench_report.main(
            ["--current", str(current), "--baseline", str(baseline)]
        ) == 1

    def test_topology_regression_alone_exits_one(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current_payload = _engine_payload(3.0)
        current_payload["topologies"] = {"mesh": {"speedup": 1.0}}
        baseline_payload = _engine_payload(3.0)
        baseline_payload["topologies"] = {"mesh": {"speedup": 2.6}}
        current.write_text(json.dumps(current_payload))
        baseline.write_text(json.dumps(baseline_payload))
        assert bench_report.main(
            ["--current", str(current), "--baseline", str(baseline)]
        ) == 1

    def test_threshold_flag_is_honoured(self, tmp_path):
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(_engine_payload(2.0)))
        baseline.write_text(json.dumps(_engine_payload(3.0)))
        args = ["--current", str(current), "--baseline", str(baseline)]
        assert bench_report.main(args + ["--threshold", "0.5"]) == 0
        assert bench_report.main(args + ["--threshold", "0.1"]) == 1

    def test_workloads_only_results_exit_zero(self, tmp_path, capsys):
        """A results file without an engine speedup has nothing to gate on."""
        current = tmp_path / "current.json"
        baseline = tmp_path / "baseline.json"
        current.write_text(json.dumps(
            {"workloads": {"patterns": {"uniform": {"cycles_per_sec": 100}}}}
        ))
        baseline.write_text(json.dumps(_engine_payload(3.0)))
        assert bench_report.main(
            ["--current", str(current), "--baseline", str(baseline)]
        ) == 0
        assert "no engine speedup yet" in capsys.readouterr().out


class TestDocsLint:
    """The offline missing-docstring checker."""

    def test_clean_file_has_no_violations(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(
            '"""Module docstring."""\n\n'
            'def documented():\n    """Docstring."""\n\n'
            'class Documented:\n    """Docstring."""\n\n'
            '    def method(self):\n        """Docstring."""\n'
        )
        assert docs_lint.check_file(path) == []

    def test_missing_module_docstring(self, tmp_path):
        path = tmp_path / "bare.py"
        path.write_text("x = 1\n")
        violations = docs_lint.check_file(path)
        assert len(violations) == 1
        assert "module docstring" in violations[0]

    def test_missing_function_class_and_method_docstrings(self, tmp_path):
        path = tmp_path / "undocumented.py"
        path.write_text(
            '"""Module docstring."""\n\n'
            "def function():\n    pass\n\n"
            "class Klass:\n    def method(self):\n        pass\n"
        )
        violations = docs_lint.check_file(path)
        assert len(violations) == 3
        assert any("function function" in v for v in violations)
        assert any("class Klass" in v for v in violations)
        assert any("Klass.method" in v for v in violations)

    def test_private_and_nested_names_are_exempt(self, tmp_path):
        path = tmp_path / "exempt.py"
        path.write_text(
            '"""Module docstring."""\n\n'
            "def _private():\n    pass\n\n"
            'def outer():\n    """Doc."""\n    def inner():\n        pass\n'
        )
        assert docs_lint.check_file(path) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Module docstring."""\n')
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f():\n    pass\n")
        assert docs_lint.main([str(clean)]) == 0
        assert "OK" in capsys.readouterr().out
        assert docs_lint.main([str(dirty)]) == 1
        assert "violation" in capsys.readouterr().out
        assert docs_lint.main([]) == 2  # usage error

    def test_main_recurses_into_directories(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "module.py").write_text("x = 1\n")
        assert docs_lint.main([str(tmp_path)]) == 1


class TestGeneratedTables:
    """The registry-generated docs tables and their drift check."""

    def test_committed_docs_are_in_sync(self):
        """The acceptance gate: README/architecture match the registries."""
        assert docs_lint.check_tables() == []

    def test_new_registry_entry_is_flagged_as_drift(self, monkeypatch):
        # Registering a pattern without regenerating the docs must fail
        # the check — that is the whole point of the generated regions.
        from repro.workloads import registry

        entry = registry.WorkloadEntry(
            "zz_fake", object, "a pattern the docs have never heard of"
        )
        monkeypatch.setitem(registry._PATTERNS, "zz_fake", entry)
        violations = docs_lint.check_tables()
        assert violations, "adding a pattern must make the tables stale"
        assert any("workload-patterns" in v for v in violations)
        assert all("--tables --write" in v for v in violations)

    def _docs_root(self, tmp_path, readme, architecture=None):
        (tmp_path / "src").mkdir()
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(readme)
        (tmp_path / "docs" / "architecture.md").write_text(
            architecture if architecture is not None else self._all_regions()
        )
        return tmp_path

    @staticmethod
    def _all_regions():
        return "\n".join(
            f"<!-- BEGIN GENERATED: {name} -->\nstale\n"
            f"<!-- END GENERATED: {name} -->"
            for name in docs_lint.GENERATED_TABLES
        )

    def test_deleting_every_marker_is_a_violation(self, tmp_path):
        # Silencing the check by deleting the markers must not work:
        # every known table has to live somewhere.
        root = self._docs_root(tmp_path, "no markers here\n", "none here\n")
        violations = docs_lint.check_tables(root=root)
        names = set(docs_lint.GENERATED_TABLES)
        assert names == {
            name for name in names
            if any(f"generated table {name!r} has no" in v for v in violations)
        }

    def test_unknown_region_name_is_a_violation(self, tmp_path):
        readme = (
            self._all_regions()
            + "\n<!-- BEGIN GENERATED: bogus -->\nx\n"
            "<!-- END GENERATED: bogus -->\n"
        )
        root = self._docs_root(tmp_path, readme)
        violations = docs_lint.check_tables(root=root)
        assert any("unknown generated region 'bogus'" in v for v in violations)

    def test_write_regenerates_stale_regions(self, tmp_path, capsys):
        root = self._docs_root(tmp_path, self._all_regions())
        assert docs_lint.check_tables(root=root)  # stale before --write
        assert docs_lint.check_tables(write=True, root=root) == []
        assert "rewrote generated tables" in capsys.readouterr().out
        assert docs_lint.check_tables(root=root) == []
        assert "stale" not in (root / "README.md").read_text()

    def test_missing_docs_file_is_a_violation(self, tmp_path):
        root = self._docs_root(tmp_path, self._all_regions())
        (root / "docs" / "architecture.md").unlink()
        violations = docs_lint.check_tables(root=root)
        assert any("missing documentation file" in v for v in violations)

    def test_tables_flag_main_exit_codes(self, capsys):
        assert docs_lint.main(["--tables"]) == 0
        assert "tables in sync" in capsys.readouterr().out


@pytest.mark.parametrize("tool", ["bench_report", "docs_lint"])
def test_tools_have_module_docstrings(tool):
    """The linting tools hold themselves to their own standard."""
    module = {"bench_report": bench_report, "docs_lint": docs_lint}[tool]
    assert module.__doc__ and module.__doc__.strip()
