"""Tests of the three benchmark kernels (functional correctness and locality)."""

import numpy as np
import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.kernels import Conv2dKernel, DctKernel, MatmulKernel, PAPER_KERNELS, split_evenly
from repro.kernels.dct import dct_1d, dct_2d
from repro.kernels.runtime import load_use_block, mac_compute


def tiny_cluster(topology="toph", scrambling=True):
    return MemPoolCluster(MemPoolConfig.tiny(topology, scrambling_enabled=scrambling))


class TestWorkSplitting:
    def test_split_evenly_covers_everything_without_overlap(self):
        slices = split_evenly(100, 7)
        assert slices[0][0] == 0
        assert slices[-1][1] == 100
        for (_, end), (start, _) in zip(slices, slices[1:]):
            assert start == end

    def test_split_sizes_differ_by_at_most_one(self):
        sizes = [end - start for start, end in split_evenly(101, 8)]
        assert max(sizes) - min(sizes) <= 1

    def test_split_with_more_parts_than_items(self):
        slices = split_evenly(3, 8)
        assert sum(end - start for start, end in slices) == 3

    def test_split_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            split_evenly(10, 0)
        with pytest.raises(ValueError):
            split_evenly(-1, 2)

    def test_load_use_block_yields_loads_then_uses(self):
        operations = list(load_use_block([0, 4, 8], "x"))
        kinds = [type(operation).__name__ for operation in operations]
        assert kinds == ["Load", "Load", "Load", "Use", "Use", "Use"]

    def test_mac_compute_counts_muls(self):
        compute = mac_compute(4)
        assert compute.muls == 4
        assert compute.cycles == 10


class TestMatmulKernel:
    def test_result_matches_numpy(self):
        kernel = MatmulKernel(tiny_cluster(), size=8)
        result = kernel.run()
        assert result.correct
        assert np.array_equal(kernel.result(), kernel.reference())

    def test_accesses_are_predominantly_remote(self):
        # Use the 64-core cluster and a 32x32 matrix: with rows spanning
        # multiple tiles the interleaved operands are overwhelmingly remote,
        # as the paper states for matmul.
        cluster = MemPoolCluster(MemPoolConfig.scaled("toph"))
        kernel = MatmulKernel(cluster, size=32)
        result = kernel.run(verify=False)
        assert result.local_fraction < 0.3

    def test_every_core_contributes(self):
        kernel = MatmulKernel(tiny_cluster(), size=8)
        result = kernel.run()
        assert result.system.active_cores == 16

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MatmulKernel(tiny_cluster(), size=6)

    def test_ideal_topology_is_fastest(self):
        cycles = {}
        for topology in ("top1", "toph", "topx"):
            kernel = MatmulKernel(tiny_cluster(topology), size=8)
            cycles[topology] = kernel.run(verify=False).cycles
        assert cycles["topx"] <= cycles["toph"] <= cycles["top1"]


class TestConv2dKernel:
    def test_result_matches_numpy(self):
        kernel = Conv2dKernel(tiny_cluster(), width=16)
        result = kernel.run()
        assert result.correct

    def test_accesses_are_mostly_local_with_scrambling(self):
        kernel = Conv2dKernel(tiny_cluster(scrambling=True), width=16)
        result = kernel.run(verify=False)
        assert result.local_fraction > 0.8

    def test_accesses_spread_without_scrambling(self):
        kernel = Conv2dKernel(tiny_cluster(scrambling=False), width=16)
        result = kernel.run(verify=False)
        assert result.local_fraction < 0.5

    def test_functional_result_is_independent_of_scrambling(self):
        with_scrambling = Conv2dKernel(tiny_cluster(scrambling=True), width=16)
        without_scrambling = Conv2dKernel(tiny_cluster(scrambling=False), width=16)
        with_scrambling.run()
        without_scrambling.run()
        assert np.array_equal(with_scrambling.result(), without_scrambling.result())

    def test_height_must_divide_into_tiles(self):
        with pytest.raises(ValueError):
            Conv2dKernel(tiny_cluster(), height=30, width=16)

    def test_border_pixels_pass_through(self):
        kernel = Conv2dKernel(tiny_cluster(), width=16)
        kernel.run()
        assert np.array_equal(kernel.result()[0, :], kernel.image[0, :])


class TestDctKernel:
    def test_dct1d_matches_direct_formula(self):
        values = np.arange(8, dtype=np.int64) * 3 - 5
        from repro.kernels.dct import COS_TABLE
        expected = (COS_TABLE @ values) >> 6
        assert np.array_equal(dct_1d(values), expected)

    def test_dct2d_dc_coefficient_of_constant_block(self):
        block = np.full((8, 8), 4, dtype=np.int64)
        transformed = dct_2d(block)
        assert transformed[0, 0] > 0
        assert np.all(transformed[1:, 1:] == 0)

    def test_result_matches_reference(self):
        kernel = DctKernel(tiny_cluster())
        result = kernel.run()
        assert result.correct

    def test_all_accesses_local_with_scrambling(self):
        kernel = DctKernel(tiny_cluster(scrambling=True))
        result = kernel.run(verify=False)
        assert result.local_fraction == pytest.approx(1.0)

    def test_accesses_remote_without_scrambling(self):
        kernel = DctKernel(tiny_cluster(scrambling=False))
        result = kernel.run(verify=False)
        assert result.local_fraction < 0.5

    def test_scrambling_speeds_up_dct(self):
        fast = DctKernel(tiny_cluster(scrambling=True)).run(verify=False).cycles
        slow = DctKernel(tiny_cluster(scrambling=False)).run(verify=False).cycles
        assert fast < slow

    def test_multiple_blocks_per_core(self):
        kernel = DctKernel(tiny_cluster(), blocks_per_core=2)
        result = kernel.run()
        assert result.correct
        assert len(kernel.blocks) == 32

    def test_invalid_blocks_per_core(self):
        with pytest.raises(ValueError):
            DctKernel(tiny_cluster(), blocks_per_core=0)


class TestKernelRegistry:
    def test_paper_kernels_mapping(self):
        assert set(PAPER_KERNELS) == {"matmul", "2dconv", "dct"}

    def test_kernel_result_metadata(self):
        kernel = MatmulKernel(tiny_cluster("top4"), size=8)
        result = kernel.run(verify=False)
        assert result.topology == "top4"
        assert result.scrambling is True
        assert result.instructions > 0
