"""Tests of the cluster topologies: latencies, path structure, port sharing."""

import pytest

from repro.core.config import MemPoolConfig
from repro.interconnect.resources import RegisterStage
from repro.interconnect.topology import (
    IdealTopology,
    Top1Topology,
    Top4Topology,
    TopHTopology,
    build_topology,
)


def topology_for(name, size="tiny"):
    config = getattr(MemPoolConfig, size)(name)
    return build_topology(config), config


class TestFactory:
    def test_factory_builds_the_right_class(self):
        classes = {
            "top1": Top1Topology,
            "top4": Top4Topology,
            "toph": TopHTopology,
            "topx": IdealTopology,
        }
        for name, expected in classes.items():
            topology, _ = topology_for(name)
            assert isinstance(topology, expected)

    def test_unknown_topology_rejected(self):
        # Sneak an unregistered name past construction-time validation;
        # the registry lookup inside build_topology must still reject it.
        config = MemPoolConfig.tiny()
        object.__setattr__(config, "topology", "warp")
        with pytest.raises(ValueError, match="unknown topology"):
            build_topology(config)

    def test_registered_family_builds_through_the_factory(self):
        config = MemPoolConfig.tiny("ring")
        assert build_topology(config).name == "ring"


class TestZeroLoadLatency:
    """The paper's headline latencies: 1 cycle local, 3 in-group, 5 remote."""

    @pytest.mark.parametrize("name", ["top1", "top4", "toph", "topx"])
    def test_local_access_is_single_cycle(self, name):
        topology, config = topology_for(name)
        for core in range(config.num_cores):
            tile = config.tile_of_core(core)
            bank = tile * config.banks_per_tile + 3
            assert topology.zero_load_latency(core, bank) == 1

    @pytest.mark.parametrize("name", ["top1", "top4"])
    def test_remote_access_is_five_cycles_for_butterfly_topologies(self, name):
        topology, config = topology_for(name, size="scaled")
        assert topology.zero_load_latency(0, 5 * config.banks_per_tile) == 5
        assert topology.zero_load_latency(17, 0) == 5

    def test_toph_same_group_is_three_cycles(self):
        topology, config = topology_for("toph", size="scaled")
        # Tiles 0..3 form group 0.
        assert topology.zero_load_latency(0, 1 * config.banks_per_tile) == 3
        assert topology.zero_load_latency(0, 3 * config.banks_per_tile) == 3

    def test_toph_remote_group_is_five_cycles(self):
        topology, config = topology_for("toph", size="scaled")
        assert topology.zero_load_latency(0, 4 * config.banks_per_tile) == 5
        assert topology.zero_load_latency(0, 15 * config.banks_per_tile) == 5

    def test_ideal_topology_is_always_single_cycle(self):
        topology, config = topology_for("topx", size="scaled")
        for bank in range(0, config.num_banks, 37):
            assert topology.zero_load_latency(0, bank) == 1

    def test_full_size_latencies_match_the_paper(self):
        topology, config = topology_for("toph", size="full")
        banks = config.banks_per_tile
        assert topology.zero_load_latency(0, 0 * banks) == 1
        assert topology.zero_load_latency(0, 7 * banks) == 3
        assert topology.zero_load_latency(0, 40 * banks) == 5


class TestPathStructure:
    def test_store_path_ends_at_the_bank(self, tiny_cluster):
        topology = tiny_cluster.topology
        path = topology.build_path(0, tiny_cluster.config.num_banks - 1, needs_response=False)
        assert isinstance(path[-1], RegisterStage)
        assert path[-1] is topology.bank_stages[-1]

    def test_load_path_ends_at_the_core_response_port(self, tiny_cluster):
        topology = tiny_cluster.topology
        path = topology.build_path(2, tiny_cluster.config.num_banks - 1, needs_response=True)
        assert path[-1] is topology.core_response_ports[2]

    def test_paths_are_cached_per_core_and_destination_tile(self, tiny_cluster):
        topology = tiny_cluster.topology
        config = tiny_cluster.config
        first = topology.build_path(0, 3 * config.banks_per_tile, True)
        second = topology.build_path(0, 3 * config.banks_per_tile + 1, True)
        # Same network resources, different bank stage.
        assert [r for r in first if not isinstance(r, RegisterStage) or r.level != 3] == [
            r for r in second if not isinstance(r, RegisterStage) or r.level != 3
        ]

    def test_top1_cores_of_a_tile_share_one_master_port(self):
        topology, config = topology_for("top1")
        paths = [
            topology.build_path(core, 3 * config.banks_per_tile, True)
            for core in range(config.cores_per_tile)
        ]
        first_registers = {path[0] for path in paths}
        assert len(first_registers) == 1

    def test_top4_cores_have_dedicated_master_ports(self):
        topology, config = topology_for("top4")
        paths = [
            topology.build_path(core, 3 * config.banks_per_tile, True)
            for core in range(config.cores_per_tile)
        ]
        first_registers = {path[0] for path in paths}
        assert len(first_registers) == config.cores_per_tile

    def test_toph_routes_by_destination_group(self):
        topology, config = topology_for("toph", size="scaled")
        local_group_path = topology.build_path(0, 2 * config.banks_per_tile, True)
        remote_group_path = topology.build_path(0, 8 * config.banks_per_tile, True)
        assert local_group_path[0].name.endswith("local")
        assert not remote_group_path[0].name.endswith("local")

    def test_toph_different_destination_groups_use_different_ports(self):
        topology, config = topology_for("toph", size="scaled")
        ports = set()
        for group in range(1, 4):
            tile = group * config.tiles_per_group
            path = topology.build_path(0, tile * config.banks_per_tile, True)
            ports.add(path[0].name)
        assert len(ports) == 3

    def test_ideal_topology_has_no_network_resources(self):
        topology, config = topology_for("topx")
        path = topology.build_path(0, config.num_banks - 1, True)
        assert len(path) == 2  # bank + core response port

    def test_local_path_has_no_master_port(self, tiny_cluster):
        path = tiny_cluster.topology.build_path(0, 0, True)
        registers = [r for r in path if isinstance(r, RegisterStage)]
        assert len(registers) == 1  # only the bank


class TestStructuralSummary:
    def test_remote_ports_per_tile(self):
        assert topology_for("top1")[0].remote_ports_per_tile() == 1
        assert topology_for("top4")[0].remote_ports_per_tile() == 4
        assert topology_for("toph")[0].remote_ports_per_tile() == 4

    def test_summary_counts_banks(self, tiny_cluster):
        summary = tiny_cluster.topology.structural_summary()
        assert summary["banks"] == tiny_cluster.config.num_banks
        assert summary["register_stages"] >= summary["banks"]

    def test_bank_stages_exist_for_every_bank(self, tiny_cluster):
        assert len(tiny_cluster.topology.bank_stages) == tiny_cluster.config.num_banks

    def test_core_response_ports_exist_for_every_core(self, tiny_cluster):
        assert len(tiny_cluster.topology.core_response_ports) == tiny_cluster.config.num_cores
