"""Tests of the per-core reorder buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rob import ReorderBuffer


class TestAllocation:
    def test_capacity_enforced(self):
        rob = ReorderBuffer(2)
        rob.allocate("a")
        rob.allocate("b")
        assert rob.is_full
        with pytest.raises(RuntimeError):
            rob.allocate("c")

    def test_duplicate_tag_rejected(self):
        rob = ReorderBuffer(4)
        rob.allocate("a")
        with pytest.raises(ValueError):
            rob.allocate("a")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)

    def test_occupancy_and_high_water_mark(self):
        rob = ReorderBuffer(4)
        rob.allocate(1)
        rob.allocate(2)
        assert rob.occupancy == 2
        rob.complete(1)
        rob.retire_ready()
        assert rob.occupancy == 1
        assert rob.max_occupancy == 2


class TestCompletion:
    def test_unknown_tag_rejected(self):
        with pytest.raises(KeyError):
            ReorderBuffer(2).complete("x")

    def test_double_completion_rejected(self):
        rob = ReorderBuffer(2)
        rob.allocate("a")
        rob.complete("a")
        with pytest.raises(ValueError):
            rob.complete("a")

    def test_is_complete_defaults_to_true_for_retired_tags(self):
        rob = ReorderBuffer(2)
        rob.allocate("a")
        assert not rob.is_complete("a")
        rob.complete("a")
        assert rob.is_complete("a")
        rob.retire_ready()
        assert rob.is_complete("a")

    def test_is_outstanding(self):
        rob = ReorderBuffer(2)
        rob.allocate("a")
        assert rob.is_outstanding("a")
        rob.complete("a")
        rob.retire_ready()
        assert not rob.is_outstanding("a")


class TestInOrderRetirement:
    def test_retirement_stops_at_incomplete_entry(self):
        rob = ReorderBuffer(4)
        rob.allocate(1)
        rob.allocate(2)
        rob.allocate(3)
        rob.complete(2)
        rob.complete(3)
        assert rob.retire_ready() == []
        rob.complete(1)
        assert rob.retire_ready() == [1, 2, 3]

    def test_retirement_preserves_program_order(self):
        rob = ReorderBuffer(4)
        for tag in "abcd":
            rob.allocate(tag)
        for tag in "dcba":
            rob.complete(tag)
        assert rob.retire_ready() == list("abcd")

    def test_clear(self):
        rob = ReorderBuffer(2)
        rob.allocate("a")
        rob.clear()
        assert rob.occupancy == 0

    @given(
        completion_order=st.permutations(list(range(8))),
        capacity=st.integers(min_value=8, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_completion_order_retires_in_program_order(self, completion_order, capacity):
        rob = ReorderBuffer(capacity)
        for tag in range(8):
            rob.allocate(tag)
        retired = []
        for tag in completion_order:
            rob.complete(tag)
            retired.extend(rob.retire_ready())
        assert retired == list(range(8))
