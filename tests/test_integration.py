"""Cross-module integration tests asserting the paper's qualitative claims.

These tests run on small clusters so they stay fast, but each one checks a
statement the paper makes about the full system: latency classes, saturation
ordering, the benefit of the hybrid addressing scheme, and the relative
behaviour of the benchmark kernels.
"""

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.kernels import DctKernel, MatmulKernel
from repro.traffic import LocalBiasedPattern, TrafficSimulation


def scaled(topology, **overrides):
    return MemPoolCluster(MemPoolConfig.scaled(topology, **overrides))


class TestLatencyClasses:
    """'All the cores share a global view of a large L1 ... accessible within
    at most 5 cycles' (abstract)."""

    @pytest.mark.parametrize("topology", ["top1", "top4", "toph"])
    def test_every_bank_is_reachable_within_five_cycles(self, topology):
        cluster = scaled(topology)
        config = cluster.config
        worst = max(
            cluster.zero_load_latency(0, bank)
            for bank in range(0, config.num_banks, config.banks_per_tile)
        )
        assert worst == 5

    def test_toph_has_three_latency_classes(self):
        cluster = scaled("toph")
        banks = cluster.config.banks_per_tile
        latencies = {
            cluster.zero_load_latency(0, tile * banks)
            for tile in range(cluster.config.num_tiles)
        }
        assert latencies == {1, 3, 5}


class TestSaturationOrdering:
    """Figure 5: Top1 congests at ~0.10 while Top4/TopH support ~4x more."""

    @pytest.fixture(scope="class")
    def saturation(self):
        throughput = {}
        for topology in ("top1", "top4", "toph"):
            cluster = scaled(topology)
            simulation = TrafficSimulation(cluster, injection_rate=0.5, seed=0)
            result = simulation.run(warmup_cycles=200, measure_cycles=400)
            throughput[topology] = result.throughput
        return throughput

    def test_top1_saturates_early(self, saturation):
        assert saturation["top1"] < 0.2

    def test_top4_and_toph_support_much_higher_load(self, saturation):
        assert saturation["top4"] > 2.0 * saturation["top1"]
        assert saturation["toph"] > 2.0 * saturation["top1"]

    def test_toph_latency_stays_low_at_a_third_of_a_request_per_cycle(self):
        cluster = scaled("toph")
        result = TrafficSimulation(cluster, 0.33, seed=0).run(300, 600)
        assert result.average_latency < 8.0


class TestHybridAddressingClaims:
    """Figure 6 and Section IV: locality raises throughput and cuts latency."""

    def test_fully_local_traffic_reaches_near_unit_throughput(self):
        cluster = scaled("toph")
        pattern = LocalBiasedPattern(cluster.config, p_local=1.0, seed=0)
        result = TrafficSimulation(cluster, 0.85, pattern=pattern, seed=0).run(200, 400)
        assert result.throughput > 0.75
        # Fully local traffic never touches the global interconnect: even at
        # 85 % load the round trip (including source queueing) stays small,
        # far below the congested remote-traffic latencies of Figure 5b.
        assert result.average_latency < 12.0

    def test_quarter_local_traffic_beats_fully_remote(self):
        latencies = {}
        for p_local in (0.0, 0.25):
            cluster = scaled("toph")
            pattern = LocalBiasedPattern(cluster.config, p_local=p_local, seed=0)
            result = TrafficSimulation(cluster, 0.45, pattern=pattern, seed=0).run(200, 500)
            latencies[p_local] = result.average_latency
        assert latencies[0.25] < latencies[0.0]


class TestBenchmarkClaims:
    """Figure 7 and the abstract's 20 %-gain / 80 %-of-baseline claims."""

    def test_toph_matmul_is_within_a_third_of_the_ideal_baseline(self):
        ideal = MatmulKernel(
            MemPoolCluster(MemPoolConfig.tiny("topx")), size=16
        ).run(verify=False).cycles
        real = MatmulKernel(
            MemPoolCluster(MemPoolConfig.tiny("toph")), size=16
        ).run(verify=False).cycles
        assert ideal <= real <= 1.5 * ideal

    def test_scrambling_gains_on_local_data_kernels(self):
        slow = DctKernel(
            MemPoolCluster(MemPoolConfig.tiny("toph", scrambling_enabled=False))
        ).run(verify=False).cycles
        fast = DctKernel(
            MemPoolCluster(MemPoolConfig.tiny("toph", scrambling_enabled=True))
        ).run(verify=False).cycles
        assert fast < slow
        assert (slow - fast) / slow > 0.05

    def test_dct_with_scrambling_matches_the_ideal_baseline(self):
        ideal = DctKernel(
            MemPoolCluster(MemPoolConfig.tiny("topx"))
        ).run(verify=False).cycles
        toph = DctKernel(
            MemPoolCluster(MemPoolConfig.tiny("toph"))
        ).run(verify=False).cycles
        assert toph <= 1.1 * ideal

    def test_matmul_on_toph_beats_top1(self):
        top1 = MatmulKernel(
            MemPoolCluster(MemPoolConfig.tiny("top1")), size=16
        ).run(verify=False).cycles
        toph = MatmulKernel(
            MemPoolCluster(MemPoolConfig.tiny("toph")), size=16
        ).run(verify=False).cycles
        assert toph < top1
