"""Tests of the cluster configuration object."""

import pytest

from repro.core.config import WORD_BYTES, MemPoolConfig, TimingParameters


class TestDefaults:
    def test_default_is_the_paper_cluster(self):
        config = MemPoolConfig()
        assert config.num_tiles == 64
        assert config.cores_per_tile == 4
        assert config.banks_per_tile == 16
        assert config.num_cores == 256
        assert config.num_banks == 1024
        assert config.topology == "toph"

    def test_default_l1_capacity_is_one_mebibyte(self):
        assert MemPoolConfig().l1_bytes == 1024 * 1024

    def test_bank_capacity(self):
        config = MemPoolConfig()
        assert config.bank_bytes == 1024
        assert config.bank_words == 256

    def test_full_constructor_matches_default(self):
        assert MemPoolConfig.full() == MemPoolConfig()

    def test_scaled_constructor(self):
        config = MemPoolConfig.scaled()
        assert config.num_tiles == 16
        assert config.num_cores == 64
        assert config.num_groups == 4

    def test_tiny_constructor(self):
        config = MemPoolConfig.tiny()
        assert config.num_tiles == 4
        assert config.num_cores == 16

    def test_describe_mentions_topology_and_cores(self):
        text = MemPoolConfig.scaled("top4").describe()
        assert "top4" in text
        assert "64 cores" in text


class TestAddressFields:
    def test_bit_field_widths(self):
        config = MemPoolConfig()
        assert config.byte_offset_bits == 2
        assert config.bank_offset_bits == 4
        assert config.tile_offset_bits == 6

    def test_bit_fields_cover_the_address_space(self):
        config = MemPoolConfig()
        row_bits = (config.l1_bytes - 1).bit_length() - (
            config.byte_offset_bits + config.bank_offset_bits + config.tile_offset_bits
        )
        assert 2 ** (row_bits) == config.bank_words

    def test_seq_row_bits(self):
        config = MemPoolConfig()
        rows = config.seq_region_bytes_per_tile // (config.banks_per_tile * WORD_BYTES)
        assert 2**config.seq_row_bits == rows

    def test_seq_region_total(self):
        config = MemPoolConfig.scaled()
        assert config.seq_region_total_bytes == 16 * config.seq_region_bytes_per_tile


class TestIndexHelpers:
    def test_tile_of_core(self):
        config = MemPoolConfig.scaled()
        assert config.tile_of_core(0) == 0
        assert config.tile_of_core(3) == 0
        assert config.tile_of_core(4) == 1
        assert config.tile_of_core(63) == 15

    def test_group_of_tile(self):
        config = MemPoolConfig.scaled()
        assert config.group_of_tile(0) == 0
        assert config.group_of_tile(3) == 0
        assert config.group_of_tile(4) == 1
        assert config.group_of_tile(15) == 3

    def test_group_of_core(self):
        config = MemPoolConfig.scaled()
        assert config.group_of_core(0) == 0
        assert config.group_of_core(63) == 3

    def test_tile_of_bank(self):
        config = MemPoolConfig.scaled()
        assert config.tile_of_bank(0) == 0
        assert config.tile_of_bank(16) == 1
        assert config.tile_of_bank(255) == 15

    def test_local_indices(self):
        config = MemPoolConfig.scaled()
        assert config.local_core_index(5) == 1
        assert config.local_bank_index(17) == 1

    def test_out_of_range_core_rejected(self):
        config = MemPoolConfig.tiny()
        with pytest.raises(ValueError):
            config.tile_of_core(config.num_cores)
        with pytest.raises(ValueError):
            config.tile_of_core(-1)

    def test_out_of_range_bank_rejected(self):
        config = MemPoolConfig.tiny()
        with pytest.raises(ValueError):
            config.tile_of_bank(config.num_banks)

    def test_out_of_range_tile_rejected(self):
        config = MemPoolConfig.tiny()
        with pytest.raises(ValueError):
            config.group_of_tile(config.num_tiles)


class TestValidation:
    def test_unknown_topology_rejected(self):
        # "mesh"/"ring" & friends are valid registry names now; only a name
        # absent from the topology registry is rejected.
        with pytest.raises(ValueError, match="topology"):
            MemPoolConfig(topology="warp")

    def test_registered_family_accepted_with_params(self):
        config = MemPoolConfig(topology="mesh", topology_params={"width": 8})
        assert config.topology_params == (("width", 8),)

    def test_unknown_topology_param_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            MemPoolConfig(topology="mesh", topology_params={"depth": 3})

    def test_non_power_of_two_tiles_rejected(self):
        with pytest.raises(ValueError):
            MemPoolConfig(num_tiles=48)

    def test_top1_requires_power_of_radix_tiles(self):
        with pytest.raises(ValueError, match="power of the"):
            MemPoolConfig(num_tiles=32, topology="top1")

    def test_toph_requires_power_of_radix_group(self):
        with pytest.raises(ValueError, match="tiles-per-group"):
            MemPoolConfig(num_tiles=32, topology="toph")

    def test_tiles_must_divide_into_groups(self):
        with pytest.raises(ValueError, match="divisible"):
            MemPoolConfig(num_tiles=4, num_groups=3)

    def test_sequential_region_must_fit_in_tile(self):
        with pytest.raises(ValueError):
            MemPoolConfig(seq_region_bytes_per_tile=32 * 1024, spm_bytes_per_tile=16 * 1024)

    def test_stacks_must_fit_in_sequential_region(self):
        with pytest.raises(ValueError, match="stacks"):
            MemPoolConfig(stack_bytes_per_core=4096, seq_region_bytes_per_tile=8192)

    def test_timing_parameters_validated(self):
        with pytest.raises(ValueError):
            MemPoolConfig(timing=TimingParameters(elastic_buffer_depth=0))

    def test_negative_outstanding_loads_rejected(self):
        with pytest.raises(ValueError):
            TimingParameters(max_outstanding_loads=0).validate()

    def test_scaled_config_valid_for_all_topologies(self):
        for topology in ("top1", "top4", "toph", "topx"):
            config = MemPoolConfig.scaled(topology)
            assert config.topology == topology


class TestCopies:
    def test_with_topology_returns_new_config(self):
        base = MemPoolConfig.scaled("toph")
        other = base.with_topology("top1")
        assert other.topology == "top1"
        assert base.topology == "toph"
        assert other.num_tiles == base.num_tiles

    def test_with_scrambling(self):
        base = MemPoolConfig.scaled()
        assert base.scrambling_enabled
        assert not base.with_scrambling(False).scrambling_enabled

    def test_config_is_hashable_and_frozen(self):
        config = MemPoolConfig.tiny()
        with pytest.raises(Exception):
            config.num_tiles = 8  # type: ignore[misc]
        assert hash(config) == hash(MemPoolConfig.tiny())


class TestSerialisationAndHashing:
    def test_to_dict_round_trips(self):
        config = MemPoolConfig.scaled("top4", scrambling_enabled=False)
        clone = MemPoolConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.timing == config.timing

    def test_to_dict_is_json_serialisable(self):
        import json

        json.dumps(MemPoolConfig.tiny().to_dict())

    def test_stable_hash_is_deterministic_and_content_addressed(self):
        assert MemPoolConfig.tiny("top1").stable_hash() == MemPoolConfig.tiny(
            "top1"
        ).stable_hash()
        assert (
            MemPoolConfig.tiny("top1").stable_hash()
            != MemPoolConfig.tiny("toph").stable_hash()
        )
        assert len(MemPoolConfig.tiny().stable_hash()) == 64

    def test_stable_hash_sees_timing_changes(self):
        from repro.core.config import TimingParameters

        base = MemPoolConfig.tiny()
        tweaked = MemPoolConfig.tiny(timing=TimingParameters(max_outstanding_loads=2))
        assert base.stable_hash() != tweaked.stable_hash()

    def test_from_dict_with_missing_keys_uses_defaults(self):
        config = MemPoolConfig.from_dict({"num_tiles": 4, "topology": "top1"})
        assert config == MemPoolConfig.tiny("top1")

    def test_non_default_timing_round_trips_with_identical_hash(self):
        from repro.core.config import TimingParameters

        config = MemPoolConfig.tiny(
            timing=TimingParameters(
                elastic_buffer_depth=3,
                max_outstanding_loads=4,
                injection_queue_depth=2,
                icache_refill_cycles=30,
            )
        )
        clone = MemPoolConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.stable_hash() == config.stable_hash()

    def test_stable_hash_equal_iff_to_dict_equal(self):
        a = MemPoolConfig.tiny("toph")
        b = MemPoolConfig.tiny("toph", scrambling_enabled=False)
        assert (a.to_dict() == b.to_dict()) == (a.stable_hash() == b.stable_hash())
        c = MemPoolConfig.from_dict(a.to_dict())
        assert a.to_dict() == c.to_dict() and a.stable_hash() == c.stable_hash()

    def test_timing_parameters_round_trip(self):
        from repro.core.config import TimingParameters

        timing = TimingParameters(elastic_buffer_depth=4)
        assert TimingParameters.from_dict(timing.to_dict()) == timing
