"""Tests of the ISS-to-timing-model bridge and the instruction-cache model."""

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.core.system import MemPoolSystem
from repro.snitch import InstructionCache, assemble
from repro.snitch.agent import SnitchAgent, make_snitch_agents


@pytest.fixture
def cluster():
    return MemPoolCluster(MemPoolConfig.tiny("toph"))


class TestInstructionCache:
    def test_first_access_misses_then_hits(self):
        cache = InstructionCache(capacity_bytes=256, ways=2, line_bytes=32)
        assert not cache.access(0)
        assert cache.access(4)
        assert cache.access(28)
        assert not cache.access(32)

    def test_lru_eviction(self):
        cache = InstructionCache(capacity_bytes=128, ways=2, line_bytes=32)
        # Two sets; addresses mapping to set 0: lines 0, 2, 4 (stride 64).
        cache.access(0)
        cache.access(64)
        cache.access(128)  # evicts line 0
        assert not cache.access(0)

    def test_fetch_penalty(self):
        cache = InstructionCache(refill_cycles=17)
        assert cache.fetch_penalty(0) == 17
        assert cache.fetch_penalty(0) == 0

    def test_flush(self):
        cache = InstructionCache()
        cache.access(0)
        cache.flush()
        assert not cache.access(0)

    def test_stats(self):
        cache = InstructionCache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.accesses == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            InstructionCache(capacity_bytes=100, ways=3, line_bytes=32)


class TestSnitchAgent:
    def test_simple_program_runs_on_the_timing_model(self, cluster):
        buffer = cluster.layout.alloc_shared("buf", 64)
        cluster.memory.write_words(buffer.base, range(16))
        source = """
            la t0, buf
            li t1, 0
            li t2, 0
        loop:
            slli t3, t1, 2
            add  t3, t3, t0
            lw   t4, 0(t3)
            add  t2, t2, t4
            addi t1, t1, 1
            li   t5, 16
            blt  t1, t5, loop
            la   t6, buf
            sw   t2, 0(t6)
            ecall
        """
        program = assemble(source, symbols={"buf": buffer.base})
        agent = SnitchAgent(program, core_id=0, memory=cluster.memory,
                            stack_pointer=cluster.layout.stack_pointer(0))
        result = MemPoolSystem(cluster, {0: agent}).run()
        assert cluster.memory.read_signed(buffer.base) == sum(range(16))
        assert result.total.loads == 16
        assert result.total.stores == 1
        assert result.cycles > result.total.loads

    def test_load_use_dependency_stalls_the_core(self, cluster):
        # Place the buffer in a remote tile so the load-to-use distance of one
        # instruction cannot hide the 5-cycle remote latency.
        buffer = cluster.layout.alloc_tile_local("buf", 2, 16)
        source = """
            la t0, buf
            lw t1, 0(t0)
            add t2, t1, t1
            ecall
        """
        program = assemble(source, symbols={"buf": buffer.base})
        agent = SnitchAgent(program, core_id=0, memory=cluster.memory)
        result = MemPoolSystem(cluster, {0: agent}).run()
        assert result.total.dependency_stalls >= 1

    def test_icache_miss_penalty_increases_cycles(self, cluster):
        source = "nop\n" * 20 + "ecall"
        program = assemble(source)
        without_icache = SnitchAgent(program, 0, cluster.memory, icache=None)
        result_fast = MemPoolSystem(cluster, {0: without_icache}).run()

        other_cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        with_icache = SnitchAgent(
            program, 0, other_cluster.memory,
            icache=InstructionCache(refill_cycles=20),
        )
        result_slow = MemPoolSystem(other_cluster, {0: with_icache}).run()
        assert result_slow.cycles > result_fast.cycles

    def test_argument_registers(self, cluster):
        program = assemble("add a2, a0, a1\necall")
        agent = SnitchAgent(
            program, 0, cluster.memory, argument_registers={10: 4, 11: 38}
        )
        MemPoolSystem(cluster, {0: agent}).run()
        assert agent.core.registers.read(12) == 42

    def test_make_snitch_agents_builds_one_per_core(self, cluster):
        program = assemble("ecall")
        agents = make_snitch_agents(cluster, program)
        assert len(agents) == cluster.config.num_cores

    def test_make_snitch_agents_shares_icache_per_tile(self, cluster):
        program = assemble("ecall")
        agents = make_snitch_agents(cluster, program)
        tile0_caches = {agents[core].icache for core in cluster.tiles[0].core_ids}
        tile1_caches = {agents[core].icache for core in cluster.tiles[1].core_ids}
        assert len(tile0_caches) == 1
        assert len(tile1_caches) == 1
        assert tile0_caches != tile1_caches

    def test_argument_builder_passes_core_id(self, cluster):
        program = assemble("mv a1, a0\necall")
        agents = make_snitch_agents(
            cluster, program, argument_builder=lambda core: {10: core}
        )
        MemPoolSystem(cluster, agents).run()
        assert agents[7].core.registers.read(11) == 7

    def test_runaway_program_raises(self, cluster):
        program = assemble("spin:\nj spin")
        agent = SnitchAgent(program, 0, cluster.memory, max_instructions=500)
        with pytest.raises(RuntimeError, match="exceeded"):
            MemPoolSystem(cluster, {0: agent}).run(max_cycles=5000)
