"""Unit tests of the vector-engine building blocks.

Cycle-exactness against the object engine is covered by
``test_engine_equivalence``; these tests pin down the pieces in isolation —
network compilation, the SoA flit table, the facade interface, and the
engine selector on the cluster.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.engine import (
    CompiledNetwork,
    CompiledSimBatch,
    EngineCompileError,
    FlitTable,
    RingQueues,
    VectorStageNetwork,
)
from repro.engine.compile import BANK, COMPLETE
from repro.interconnect.resources import LEVEL_BANK


@pytest.fixture
def toph_config() -> MemPoolConfig:
    return MemPoolConfig.tiny("toph")


class TestCompiledNetwork:
    def test_zero_load_latency_matches_topology(self, tiny_cluster):
        compiled = CompiledNetwork(tiny_cluster.topology)
        config = tiny_cluster.config
        for core_id in (0, config.num_cores - 1):
            for bank_id in (0, config.num_banks // 2, config.num_banks - 1):
                assert compiled.zero_load_latency(core_id, bank_id) == (
                    tiny_cluster.topology.zero_load_latency(core_id, bank_id)
                )

    def test_templates_are_shared_per_destination_tile(self, toph_config):
        topology = MemPoolCluster(toph_config).topology
        compiled = CompiledNetwork(topology)
        banks_per_tile = toph_config.banks_per_tile
        first = compiled.path_id(0, banks_per_tile, True)  # tile 1, bank 0
        second = compiled.path_id(0, banks_per_tile + 3, True)  # tile 1, bank 3
        other_tile = compiled.path_id(0, 2 * banks_per_tile, True)  # tile 2
        assert first == second
        assert first != other_tile

    def test_bank_stage_is_a_placeholder(self, toph_config):
        topology = MemPoolCluster(toph_config).topology
        compiled = CompiledNetwork(topology)
        path_id = compiled.path_id(0, toph_config.banks_per_tile, True)
        stage_seq = compiled.path_stage_seq[path_id]
        assert stage_seq.count(BANK) == 1
        # Every concrete stage of the template sits outside the bank level.
        for stage in stage_seq:
            if stage != BANK:
                assert compiled.stage_level[stage] != LEVEL_BANK

    def test_move_chain_ends_in_completion(self, toph_config):
        topology = MemPoolCluster(toph_config).topology
        compiled = CompiledNetwork(topology)
        path_id = compiled.path_id(0, 0, True)
        entry = compiled.path_moves[path_id]
        hops = 0
        while entry is not None:
            target = entry[0]
            hops += 1
            entry = entry[2]
            if entry is None:
                assert target == COMPLETE
        # One hop per register stage plus the completion hop.
        assert hops == len(compiled.path_stage_seq[path_id]) + 1

    def test_foreign_resource_is_rejected(self, toph_config):
        topology = MemPoolCluster(toph_config).topology
        other = MemPoolCluster(toph_config).topology
        compiled = CompiledNetwork(topology)
        with pytest.raises(EngineCompileError):
            compiled._compile_path(other.build_path(0, 0, True), 0)


class TestFlitTable:
    def test_grows_past_initial_capacity(self):
        table = FlitTable(capacity=2)
        rows = [table.allocate(core, 0, 0, False, cycle=core) for core in range(5)]
        assert rows == [0, 1, 2, 3, 4]
        assert table.capacity >= 5
        table.sync()
        assert table.created_cycle[:5].tolist() == [0, 1, 2, 3, 4]
        assert table.injected_cycle[:5].tolist() == [-1] * 5

    def test_latencies_only_covers_completed_rows(self):
        table = FlitTable()
        first = table.allocate(0, 0, 0, False, cycle=2)
        table.allocate(1, 0, 0, False, cycle=3)  # never completes
        table.completed_cycle[first] = 9
        assert table.latencies().tolist() == [7]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            FlitTable(capacity=0)


class TestRingQueues:
    """Invariants of the fixed-capacity ring buffers behind ``compiled``."""

    def test_fifo_order_across_wraparound(self):
        rings = RingQueues([3])
        popped = []
        for row in range(10):  # 10 pushes through a capacity-3 ring
            rings.push(0, row)
            if rings.length(0) == 3:
                popped.append(rings.pop(0))
        while rings.length(0):
            popped.append(rings.pop(0))
        assert popped == list(range(10))

    def test_push_when_full_raises(self):
        rings = RingQueues([2])
        rings.push(0, 1)
        rings.push(0, 2)
        with pytest.raises(IndexError, match="full"):
            rings.push(0, 3)
        # The failed push must not corrupt the ring.
        assert rings.rows(0) == [1, 2]

    def test_pop_and_peek_when_empty_raise(self):
        rings = RingQueues([2])
        with pytest.raises(IndexError, match="empty"):
            rings.pop(0)
        with pytest.raises(IndexError, match="empty"):
            rings.peek(0)
        rings.push(0, 7)
        assert rings.peek(0) == 7
        assert rings.length(0) == 1  # peek must not consume

    def test_rows_reports_fifo_order_after_wrap(self):
        rings = RingQueues([3])
        rings.push(0, 1)
        rings.push(0, 2)
        rings.pop(0)
        rings.push(0, 3)
        rings.push(0, 4)  # tail physically wraps to the buffer start
        assert rings.rows(0) == [2, 3, 4]

    def test_queues_are_independent(self):
        rings = RingQueues([2, 3, 1])
        rings.push(0, 10)
        rings.push(1, 20)
        rings.push(2, 30)
        assert rings.pop(1) == 20
        assert rings.rows(0) == [10]
        assert rings.rows(2) == [30]

    def test_copies_replicate_the_capacity_vector(self):
        rings = RingQueues([2, 4], copies=3)
        assert rings.num_queues == 6
        assert rings.capacity.tolist() == [2, 4] * 3
        # Slot sim * N + stage: sim 2's copy of stage 0 is slot 4.
        rings.push(4, 99)
        assert rings.rows(4) == [99]
        assert all(rings.length(q) == 0 for q in (0, 1, 2, 3, 5))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="positive"):
            RingQueues([2], copies=0)
        with pytest.raises(ValueError, match="capacity"):
            RingQueues([2, 0])


class TestCompiledSimBatchRetireResume:
    """Retire/resume must freeze and faithfully restore a member sim."""

    def _batch(self, toph_config, num_sims=2):
        topology = MemPoolCluster(toph_config).topology
        return CompiledSimBatch(CompiledNetwork(topology), num_sims)

    def _seed_flit(self, batch, sim, cycle=0):
        rows = batch.new_rows(sim, [0], [5], cycle=cycle)
        queue = deque([rows[0]])
        injected = batch.inject_rows(sim, [queue], [0], cycle)
        assert injected == 1
        return rows[0]

    def test_retire_freezes_and_resume_restores_occupancy(self, toph_config):
        batch = self._batch(toph_config)
        self._seed_flit(batch, 0)
        self._seed_flit(batch, 1)
        assert batch.total_in_flight == 2
        batch.retire(0)
        base = 0 * batch.num_stages
        assert not batch.occupied[base : base + batch.num_stages].any()
        assert batch.total_in_flight == 1
        # The frozen sim's flits stay buffered while the other advances.
        frozen = batch.occupancy(0)
        for cycle in range(1, 100):
            batch.advance(cycle)
            if not batch.in_flight[1]:
                break
        assert batch.occupancy(0) == frozen
        assert not batch.completed_log[0]
        assert batch.completed_log[1]
        # Resume rebuilds the occupancy slice from the ring fill levels.
        batch.resume(0)
        occupied = batch.occupied[base : base + batch.num_stages]
        assert occupied.tolist() == (
            batch.rings.size[base : base + batch.num_stages] > 0
        ).tolist()
        for cycle in range(100, 200):
            batch.advance(cycle)
            if not batch.in_flight[0]:
                break
        assert batch.completed_log[0]
        assert batch.total_in_flight == 0

    def test_retire_and_resume_are_idempotent(self, toph_config):
        batch = self._batch(toph_config)
        self._seed_flit(batch, 0)
        batch.resume(0)  # resuming a live sim is a no-op
        assert batch.total_in_flight == 2 - 1
        batch.retire(0)
        batch.retire(0)
        assert batch.total_in_flight == 0
        batch.resume(0)
        batch.resume(0)
        assert batch.total_in_flight == 1


class TestVectorStageNetwork:
    def test_double_injection_is_rejected(self, toph_config):
        cluster = MemPoolCluster(toph_config, engine="vector")
        flit = cluster.make_bank_flit(0, 0, is_write=False, cycle=0)
        assert cluster.network.try_inject(flit, 0)
        with pytest.raises(ValueError, match="already injected"):
            cluster.network.try_inject(flit, 1)

    def test_drain_matches_legacy(self, toph_config):
        cycles = {}
        for engine in ("legacy", "vector"):
            cluster = MemPoolCluster(toph_config, engine=engine)
            network = cluster.network
            for core in range(cluster.config.num_cores):
                flit = cluster.make_bank_flit(core, 17, is_write=False, cycle=0)
                network.try_inject(flit, 0)
            cycles[engine] = network.drain(max_cycles=500, start_cycle=1)
            assert network.in_flight == 0
        assert cycles["legacy"] == cycles["vector"]

    def test_counters_track_lifecycle(self, toph_config):
        cluster = MemPoolCluster(toph_config, engine="vector")
        network = cluster.network
        flit = cluster.make_bank_flit(0, cluster.config.num_banks - 1,
                                      is_write=False, cycle=0)
        assert network.try_inject(flit, 0)
        assert network.in_flight == 1
        assert network.total_injected == 1
        assert network.occupancy() == 1
        network.drain(max_cycles=100, start_cycle=1)
        assert network.total_completed == 1
        assert flit.completed_cycle >= 0
        assert flit.latency == flit.completed_cycle - flit.created_cycle

    def test_completed_write_does_not_return_response(self, toph_config):
        cluster = MemPoolCluster(toph_config, engine="vector")
        network = cluster.network
        store = cluster.make_bank_flit(0, 20, is_write=True, cycle=0)
        load = cluster.make_bank_flit(0, 20, is_write=False, cycle=0)
        assert network.try_inject(store, 0)
        completed = []
        for cycle in range(1, 50):
            completed += network.advance(cycle)
            if load.position == -1:
                network.try_inject(load, cycle)
        assert {f.flit_id for f in completed} == {store.flit_id, load.flit_id}
        # The store's one-way trip is strictly shorter than the round trip.
        assert store.completed_cycle < load.completed_cycle


class TestClusterEngineSelection:
    def test_unknown_engine_rejected(self, toph_config):
        with pytest.raises(ValueError, match="unknown engine"):
            MemPoolCluster(toph_config, engine="warp")

    def test_legacy_is_the_default(self, toph_config):
        cluster = MemPoolCluster(toph_config)
        assert cluster.engine_kind == "legacy"
        assert cluster.network is cluster.topology.network

    def test_vector_network_is_lazy_and_cached(self, toph_config):
        cluster = MemPoolCluster(toph_config, engine="vector")
        network = cluster.network
        assert isinstance(network, VectorStageNetwork)
        assert cluster.network is network


def test_engines_constant_is_shared_with_the_cluster():
    from repro.core.cluster import ENGINES as cluster_engines
    from repro.engine import ENGINES as engine_engines

    assert engine_engines is cluster_engines
