"""Tests of the interleaved and hybrid (scrambled) address maps (Section IV)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.map import (
    BankLocation,
    HybridAddressMap,
    InterleavedAddressMap,
    make_address_map,
)
from repro.core.config import WORD_BYTES, MemPoolConfig


@pytest.fixture
def config():
    return MemPoolConfig.scaled()


@pytest.fixture
def interleaved(config):
    return InterleavedAddressMap(config)


@pytest.fixture
def hybrid(config):
    return HybridAddressMap(config)


class TestInterleavedMap:
    def test_consecutive_words_hit_consecutive_banks_of_one_tile(self, interleaved, config):
        locations = [interleaved.decode(4 * i) for i in range(config.banks_per_tile)]
        assert [location.bank for location in locations] == list(range(config.banks_per_tile))
        assert {location.tile for location in locations} == {0}

    def test_next_word_after_tile_stride_moves_to_next_tile(self, interleaved, config):
        stride = config.banks_per_tile * WORD_BYTES
        assert interleaved.decode(stride).tile == 1
        assert interleaved.decode(stride).bank == 0

    def test_row_increments_after_all_tiles(self, interleaved, config):
        full_sweep = config.num_tiles * config.banks_per_tile * WORD_BYTES
        location = interleaved.decode(full_sweep)
        assert location == BankLocation(tile=0, bank=0, row=1)

    def test_no_sequential_region(self, interleaved):
        with pytest.raises(ValueError):
            interleaved.sequential_base(0)

    def test_out_of_range_address_rejected(self, interleaved, config):
        with pytest.raises(ValueError):
            interleaved.decode(config.l1_bytes)
        with pytest.raises(ValueError):
            interleaved.decode(-4)

    def test_encode_is_inverse_of_decode(self, interleaved, config):
        for address in range(0, 4096, 4):
            assert interleaved.encode(interleaved.decode(address)) == address

    def test_global_bank_of(self, interleaved, config):
        stride = config.banks_per_tile * WORD_BYTES
        assert interleaved.global_bank_of(0) == 0
        assert interleaved.global_bank_of(stride + 8) == config.banks_per_tile + 2


class TestHybridMap:
    def test_sequential_region_is_tile_local(self, hybrid, config):
        """Every address of tile T's sequential slice must decode to tile T."""
        for tile in range(config.num_tiles):
            base = hybrid.sequential_base(tile)
            for offset in range(0, config.seq_region_bytes_per_tile, 256):
                assert hybrid.decode(base + offset).tile == tile

    def test_sequential_slice_still_interleaves_across_banks(self, hybrid, config):
        base = hybrid.sequential_base(2)
        banks = [hybrid.decode(base + 4 * i).bank for i in range(config.banks_per_tile)]
        assert banks == list(range(config.banks_per_tile))

    def test_addresses_above_region_are_interleaved(self, hybrid, config):
        address = config.seq_region_total_bytes
        assert hybrid.decode(address) == InterleavedAddressMap(config).decode(address)

    def test_scramble_is_identity_above_the_region(self, hybrid, config):
        address = config.seq_region_total_bytes + 4 * 123
        assert hybrid.scramble(address) == address
        assert hybrid.unscramble(address) == address

    def test_sequential_base_values(self, hybrid, config):
        assert hybrid.sequential_base(0) == 0
        assert hybrid.sequential_base(1) == config.seq_region_bytes_per_tile

    def test_sequential_base_out_of_range(self, hybrid, config):
        with pytest.raises(ValueError):
            hybrid.sequential_base(config.num_tiles)

    def test_encode_decode_roundtrip(self, hybrid):
        for address in range(0, 64 * 1024, 252):
            address -= address % 4
            assert hybrid.encode(hybrid.decode(address)) == address

    def test_unscramble_inverts_scramble_inside_region(self, hybrid, config):
        for address in range(0, config.seq_region_total_bytes, 116):
            assert hybrid.unscramble(hybrid.scramble(address)) == address

    def test_word_index(self, hybrid):
        assert hybrid.word_index(0) == 0
        assert hybrid.word_index(40) == 10

    def test_is_local(self, hybrid, config):
        base = hybrid.sequential_base(3)
        assert hybrid.is_local(base, 3)
        assert not hybrid.is_local(base, 0)


class TestHybridMapProperties:
    @given(address=st.integers(min_value=0, max_value=MemPoolConfig.scaled().l1_bytes - 1))
    @settings(max_examples=300, deadline=None)
    def test_scramble_is_a_bijection_on_l1(self, address):
        """scramble must be invertible everywhere in the L1 address space."""
        hybrid = HybridAddressMap(MemPoolConfig.scaled())
        scrambled = hybrid.scramble(address)
        assert 0 <= scrambled < hybrid.config.l1_bytes
        assert hybrid.unscramble(scrambled) == address

    @given(address=st.integers(min_value=0, max_value=MemPoolConfig.scaled().l1_bytes - 4))
    @settings(max_examples=300, deadline=None)
    def test_scrambling_preserves_word_offsets(self, address):
        """The byte and bank offsets are untouched by the scrambling logic."""
        config = MemPoolConfig.scaled()
        hybrid = HybridAddressMap(config)
        low_bits = (1 << (config.byte_offset_bits + config.bank_offset_bits)) - 1
        assert hybrid.scramble(address) & low_bits == address & low_bits

    @given(
        word=st.integers(min_value=0, max_value=MemPoolConfig.scaled().l1_bytes // 4 - 1)
    )
    @settings(max_examples=300, deadline=None)
    def test_every_word_maps_to_a_valid_bank_row(self, word):
        config = MemPoolConfig.scaled()
        hybrid = HybridAddressMap(config)
        location = hybrid.decode(word * 4)
        assert 0 <= location.tile < config.num_tiles
        assert 0 <= location.bank < config.banks_per_tile
        assert 0 <= location.row < config.bank_words

    @given(
        tile=st.integers(min_value=0, max_value=15),
        offset=st.integers(min_value=0, max_value=MemPoolConfig.scaled().seq_region_bytes_per_tile - 1),
    )
    @settings(max_examples=300, deadline=None)
    def test_sequential_region_locality_property(self, tile, offset):
        """Any address inside tile T's sequential slice decodes to tile T."""
        config = MemPoolConfig.scaled()
        hybrid = HybridAddressMap(config)
        address = hybrid.sequential_base(tile) + offset
        assert hybrid.decode(address).tile == tile


class TestFactory:
    def test_factory_respects_scrambling_flag(self):
        assert isinstance(make_address_map(MemPoolConfig.scaled()), HybridAddressMap)
        assert isinstance(
            make_address_map(MemPoolConfig.scaled(scrambling_enabled=False)),
            InterleavedAddressMap,
        )

    def test_both_maps_agree_outside_the_sequential_region(self):
        config = MemPoolConfig.scaled()
        hybrid = HybridAddressMap(config)
        interleaved = InterleavedAddressMap(config)
        for address in range(config.seq_region_total_bytes, config.seq_region_total_bytes + 2048, 4):
            assert hybrid.decode(address) == interleaved.decode(address)

    def test_maps_disagree_inside_the_sequential_region(self):
        """The scrambling must actually move data (for tiles other than 0)."""
        config = MemPoolConfig.scaled()
        hybrid = HybridAddressMap(config)
        interleaved = InterleavedAddressMap(config)
        address = hybrid.sequential_base(5) + 64
        assert hybrid.decode(address) != interleaved.decode(address)
