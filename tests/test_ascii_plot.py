"""Tests of the ASCII plot helper."""

import pytest

from repro.utils.ascii_plot import ascii_plot


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot([0, 1, 2], {"top1": [0, 1, 2], "toph": [0, 2, 4]})
        assert "o" in text and "x" in text
        assert "legend:" in text
        assert "top1" in text and "toph" in text

    def test_title_and_labels(self):
        text = ascii_plot(
            [0, 1], {"a": [1, 2]}, title="Figure", x_label="load", y_label="lat"
        )
        assert text.splitlines()[0] == "Figure"
        assert "load" in text
        assert "lat" in text

    def test_y_range_labels(self):
        text = ascii_plot([0, 1, 2], {"a": [5, 7, 9]})
        assert "9" in text
        assert "5" in text

    def test_extremes_map_inside_the_grid(self):
        text = ascii_plot([0, 100], {"a": [0.0, 1e6]}, width=20, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 5
        assert all(len(row.split("|", 1)[1]) == 20 for row in rows)

    def test_constant_series_does_not_crash(self):
        text = ascii_plot([0, 1, 2], {"flat": [3, 3, 3]})
        assert "flat" in text

    def test_mismatched_series_length_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([0, 1], {"a": [1, 2, 3]})

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([], {"a": []})
        with pytest.raises(ValueError):
            ascii_plot([0, 1], {})

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([0, 1], {"a": [1, 2]}, width=5, height=2)

    def test_many_series_cycle_markers(self):
        series = {f"s{i}": [i, i + 1] for i in range(10)}
        text = ascii_plot([0, 1], series)
        assert "legend:" in text
