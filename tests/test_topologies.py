"""The pluggable topology subsystem: registry, families, wiring, engines.

Two contracts anchor this file:

* **Analytic zero-load latencies.**  Every registered topology implements
  ``analytic_round_trip_latency`` — a closed form over tile coordinates —
  and the built ``build_path`` register count must equal it for every
  (core, bank) pair.  This pins the paper's 1/3/5-cycle invariants for
  top1/top4/toph and the distance formulas of the new families.
* **Cross-engine equivalence.**  Every registered topology must produce
  flit-for-flit identical logs on the legacy object engine, the vectorized
  engine and the batched engine — the property that makes the registry
  safe to extend (a family whose level assignment broke the monotonicity
  invariant, or whose routing was non-deterministic, fails here).
"""

from __future__ import annotations

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.engine import CompiledNetwork
from repro.experiments.spec import ExperimentSpec
from repro.interconnect.topology import build_topology
from repro.topologies import (
    MeshTopology,
    RingTopology,
    TorusTopology,
    available_topologies,
    default_grid_dims,
    make_topology,
    parse_topology_spec,
    topology_catalogue,
)

PAPER_TOPOLOGIES = ("top1", "top4", "toph", "topx")


class TestRegistry:
    def test_catalogue_minimum_size(self):
        # The four paper topologies plus at least five new families.
        names = available_topologies()
        assert set(PAPER_TOPOLOGIES) <= set(names)
        assert len(set(names) - set(PAPER_TOPOLOGIES)) >= 5

    def test_unknown_topology_lists_available(self):
        with pytest.raises(ValueError, match="available:.*mesh"):
            make_topology("warp", MemPoolConfig.tiny())

    def test_unknown_parameter_rejected_by_name(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_topology("mesh", MemPoolConfig.tiny("mesh"), depth=3)

    def test_invalid_parameter_value_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            make_topology("mesh", MemPoolConfig.tiny("mesh"), width=-4)
        with pytest.raises(ValueError, match=">= 2"):
            make_topology("butterfly", MemPoolConfig.tiny("butterfly"), radix=1)

    def test_parameterless_family_rejects_any_parameter(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_topology("ring", MemPoolConfig.tiny("ring"), width=4)

    def test_catalogue_entries_carry_summaries(self):
        for entry in topology_catalogue():
            assert entry.summary
            assert entry.name

    def test_structural_mismatch_rejected_at_build(self):
        # Parameter values can be individually valid but not tile the grid.
        with pytest.raises(ValueError, match="do not tile"):
            make_topology("mesh", MemPoolConfig.tiny("mesh"), width=3, height=2)
        with pytest.raises(ValueError, match="must divide"):
            make_topology(
                "hierarchical", MemPoolConfig.tiny("hierarchical"), groups=3
            )


class TestParseSpec:
    def test_bare_name(self):
        assert parse_topology_spec("toph") == ("toph", {})

    def test_name_with_parameters(self):
        name, params = parse_topology_spec("mesh:width=8,height=2")
        assert name == "mesh"
        assert params == {"width": 8, "height": 2}

    def test_values_parse_as_scalars(self):
        _, params = parse_topology_spec("torus:width=4,height=4")
        assert all(isinstance(value, int) for value in params.values())

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_topology_spec("mesh:width")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            parse_topology_spec("warp:x=1")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            parse_topology_spec("toph:x=1")


class TestAnalyticZeroLoadLatency:
    """build_path register counts must equal the closed-form latencies."""

    @pytest.mark.parametrize("name", available_topologies())
    def test_every_pair_matches_the_analytic_form_tiny(self, name):
        config = MemPoolConfig.tiny(name)
        topology = build_topology(config)
        for core in range(config.num_cores):
            for bank in range(0, config.num_banks, 5):
                assert topology.zero_load_latency(core, bank) == (
                    topology.analytic_round_trip_latency(core, bank)
                ), (name, core, bank)

    @pytest.mark.parametrize("name", available_topologies())
    def test_sampled_pairs_match_at_the_scaled_size(self, name):
        config = MemPoolConfig.scaled(name)
        topology = build_topology(config)
        banks = config.banks_per_tile
        for core in (0, 17, config.num_cores - 1):
            for tile in range(config.num_tiles):
                bank = tile * banks + (tile % banks)
                assert topology.zero_load_latency(core, bank) == (
                    topology.analytic_round_trip_latency(core, bank)
                ), (name, core, bank)

    def test_paper_invariants_hold_through_the_registry(self):
        # 1 cycle local everywhere; 5 cycles remote on the butterflies;
        # 1/3/5 on TopH — the paper's Section III-C headline numbers.
        banks = 16
        for name in ("top1", "top4"):
            topology = build_topology(MemPoolConfig.scaled(name))
            assert topology.analytic_round_trip_latency(0, 3) == 1
            assert topology.analytic_round_trip_latency(0, 5 * banks) == 5
        toph = build_topology(MemPoolConfig.scaled("toph"))
        assert toph.analytic_round_trip_latency(0, 3) == 1
        assert toph.analytic_round_trip_latency(0, 1 * banks) == 3
        assert toph.analytic_round_trip_latency(0, 8 * banks) == 5
        topx = build_topology(MemPoolConfig.scaled("topx"))
        assert topx.analytic_round_trip_latency(0, 8 * banks) == 1

    def test_compiled_network_reproduces_the_same_latencies(self):
        # The vector engine's compiled templates count the same registers.
        for name in ("mesh", "torus", "ring", "fully_connected"):
            config = MemPoolConfig.tiny(name)
            topology = build_topology(config)
            compiled = CompiledNetwork(topology)
            for core in (0, 7, 15):
                for bank in (0, 21, config.num_banks - 1):
                    assert compiled.zero_load_latency(core, bank) == (
                        topology.zero_load_latency(core, bank)
                    ), (name, core, bank)


class TestGridFamilies:
    def test_default_grid_dims(self):
        assert default_grid_dims(4) == (2, 2)
        assert default_grid_dims(8) == (4, 2)
        assert default_grid_dims(16) == (4, 4)
        assert default_grid_dims(64) == (8, 8)

    def test_mesh_latency_is_three_plus_twice_manhattan(self):
        config = MemPoolConfig.scaled("mesh")  # 16 tiles -> 4x4
        mesh = build_topology(config)
        assert isinstance(mesh, MeshTopology)
        banks = config.banks_per_tile
        # tile 0 -> tile 3: 3 X hops; tile 0 -> tile 15: 3 + 3 hops.
        assert mesh.zero_load_latency(0, 3 * banks) == 3 + 2 * 3
        assert mesh.zero_load_latency(0, 15 * banks) == 3 + 2 * 6
        # Neighbouring tile: a single hop each way.
        assert mesh.zero_load_latency(0, 1 * banks) == 5

    def test_torus_wraparound_shortens_edge_distances(self):
        config = MemPoolConfig.scaled("torus")  # 4x4
        torus = build_topology(config)
        assert isinstance(torus, TorusTopology)
        banks = config.banks_per_tile
        # tile 0 -> tile 3 wraps west: 1 ring hop vs the mesh's 3.
        assert torus.zero_load_latency(0, 3 * banks) == 3 + 2 * 1
        # tile 0 -> tile 15 (corner): 1 + 1 ring hops.
        assert torus.zero_load_latency(0, 15 * banks) == 3 + 2 * 2

    def test_ring_is_a_one_dimensional_torus(self):
        config = MemPoolConfig.tiny("ring")  # 4 tiles
        ring = build_topology(config)
        assert isinstance(ring, RingTopology)
        assert (ring.width, ring.height) == (config.num_tiles, 1)
        banks = config.banks_per_tile
        # Antipodal tile on a 4-ring: 2 hops each way.
        assert ring.zero_load_latency(0, 2 * banks) == 3 + 2 * 2

    def test_torus_tie_breaks_deterministically(self):
        # Even ring size: both directions are 2 hops; the route must be
        # the same list every time (no RNG in routing).
        config = MemPoolConfig.tiny("ring")
        ring = build_topology(config)
        first = ring.build_path(0, 2 * config.banks_per_tile, True)
        second = ring.build_path(0, 2 * config.banks_per_tile, True)
        assert [r.name for r in first] == [r.name for r in second]

    def test_explicit_grid_dimensions_respected(self):
        config = MemPoolConfig.tiny("mesh", topology_params={"width": 4, "height": 1})
        mesh = build_topology(config)
        assert (mesh.width, mesh.height) == (4, 1)
        banks = config.banks_per_tile
        assert mesh.zero_load_latency(0, 3 * banks) == 3 + 2 * 3


class TestFamilyStructure:
    def test_butterfly_ports_generalise_top1_and_top4(self):
        config = MemPoolConfig.tiny("butterfly")
        shared = make_topology("butterfly", config, ports=1)
        dedicated = make_topology(
            "butterfly", config, ports=config.cores_per_tile
        )
        assert shared.remote_ports_per_tile() == 1
        assert dedicated.remote_ports_per_tile() == config.cores_per_tile
        # With one lane, a tile's cores share the master port (like Top1).
        paths = [
            shared.build_path(core, 3 * config.banks_per_tile, True)
            for core in range(config.cores_per_tile)
        ]
        assert len({path[0] for path in paths}) == 1
        # With a lane per core, ports are dedicated (like Top4).
        paths = [
            dedicated.build_path(core, 3 * config.banks_per_tile, True)
            for core in range(config.cores_per_tile)
        ]
        assert len({path[0] for path in paths}) == config.cores_per_tile

    def test_hierarchical_group_count_is_configurable(self):
        config = MemPoolConfig.scaled("hierarchical")  # 16 tiles
        # 8 tiles per group needs a radix-2 inter-group butterfly.
        two_groups = make_topology("hierarchical", config, groups=2, radix=2)
        assert two_groups.remote_ports_per_tile() == 2
        banks = config.banks_per_tile
        # Tiles 0..7 now share a group: 3-cycle round trips within it.
        assert two_groups.analytic_round_trip_latency(0, 7 * banks) == 3
        assert two_groups.zero_load_latency(0, 7 * banks) == 3
        assert two_groups.zero_load_latency(0, 8 * banks) == 5

    def test_fully_connected_remote_is_three_cycles(self):
        config = MemPoolConfig.tiny("fully_connected")
        topology = build_topology(config)
        for tile in range(1, config.num_tiles):
            assert topology.zero_load_latency(0, tile * config.banks_per_tile) == 3


class TestCrossEngineEquivalence:
    """Legacy, vector and batch engines agree flit-for-flit per family."""

    @pytest.mark.parametrize("name", available_topologies())
    def test_flit_logs_identical_across_engines(self, name):
        logs = {}
        for engine in ("legacy", "vector", "batch"):
            cluster = MemPoolCluster(MemPoolConfig.tiny(name), engine=engine)
            simulation = cluster.traffic_simulation(0.3, seed=11)
            result = simulation.run(
                warmup_cycles=60, measure_cycles=200, record_flits=True
            )
            logs[engine] = (result.flit_log, result.local_fraction)
        assert logs["legacy"][0]  # the comparison must not be vacuous
        assert logs["legacy"] == logs["vector"] == logs["batch"], name

    def test_parameterized_point_is_engine_neutral(self):
        from repro.evaluation.topologies import simulate_topology_point

        results = {
            engine: simulate_topology_point(
                topology="torus", topology_params={"width": 8, "height": 2},
                load=0.3, warmup_cycles=50, measure_cycles=150, engine=engine,
            )
            for engine in ("legacy", "vector")
        }
        legacy, vector = results["legacy"], results["vector"]
        assert legacy.completed_requests == vector.completed_requests
        assert legacy.average_latency == vector.average_latency


class TestConfigIntegration:
    def test_params_round_trip_through_to_dict(self):
        config = MemPoolConfig.tiny("mesh", topology_params={"width": 4, "height": 1})
        clone = MemPoolConfig.from_dict(config.to_dict())
        assert clone == config
        assert clone.topology_param_dict == {"width": 4, "height": 1}

    def test_params_are_order_insensitive(self):
        a = MemPoolConfig.tiny("mesh", topology_params={"width": 2, "height": 2})
        b = MemPoolConfig.tiny("mesh", topology_params={"height": 2, "width": 2})
        assert a == b
        assert a.stable_hash() == b.stable_hash()

    def test_stable_hash_sees_param_changes(self):
        a = MemPoolConfig.tiny("mesh", topology_params={"width": 4, "height": 1})
        b = MemPoolConfig.tiny("mesh", topology_params={"width": 1, "height": 4})
        assert a.stable_hash() != b.stable_hash()

    def test_with_topology_resets_stale_params(self):
        config = MemPoolConfig.tiny("mesh", topology_params={"width": 4, "height": 1})
        swapped = config.with_topology("toph")
        assert swapped.topology_params == ()
        parameterized = config.with_topology("torus", width=2, height=2)
        assert parameterized.topology_param_dict == {"width": 2, "height": 2}

    def test_cache_keys_cannot_collide_across_topologies(self):
        def spec(**params):
            return ExperimentSpec(
                runner="repro.evaluation.topologies:simulate_topology_point",
                params={"load": 0.2, **params},
            )

        keys = {
            spec(topology="mesh").key,
            spec(topology="torus").key,
            spec(topology="mesh", topology_params={"width": 8, "height": 2}).key,
            spec(topology="mesh", topology_params={"width": 2, "height": 8}).key,
        }
        assert len(keys) == 4


class TestSettingsAndCLI:
    def test_settings_honour_environment_topology(self, monkeypatch):
        from repro.evaluation.settings import ExperimentSettings

        monkeypatch.setenv("MEMPOOL_TOPOLOGY", "ring")
        assert ExperimentSettings().topology == "ring"

    def test_settings_parse_spec_form(self):
        from repro.evaluation.settings import ExperimentSettings

        settings = ExperimentSettings(topology="mesh:width=8,height=2")
        assert settings.topology == "mesh"
        assert settings.topology_params == {"width": 8, "height": 2}

    def test_settings_reject_unknown_topology_early(self):
        from repro.evaluation.settings import ExperimentSettings

        with pytest.raises(ValueError, match="unknown topology"):
            ExperimentSettings(topology="warp")

    def test_settings_reject_double_parameterisation(self):
        from repro.evaluation.settings import ExperimentSettings

        with pytest.raises(ValueError, match="not both"):
            ExperimentSettings(
                topology="mesh:width=8", topology_params={"height": 2}
            )

    def test_topologies_subcommand_lists_the_catalogue(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in available_topologies():
            assert name in out

    def test_run_rejects_bad_topology_spec(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["run", "workloads", "--topology", "warp", "--no-cache"]) == 1
        assert "unknown topology" in capsys.readouterr().out

    def test_environment_topology_is_probed_too(self, capsys, monkeypatch):
        # The structural probe must also cover MEMPOOL_TOPOLOGY, not just
        # the --topology flag.
        from repro.experiments.__main__ import main

        monkeypatch.setenv("MEMPOOL_TOPOLOGY", "mesh:width=5,height=5")
        assert main(["run", "workloads", "--no-cache"]) == 1
        assert "do not tile" in capsys.readouterr().out

    def test_run_workloads_accepts_explicit_topology_params(self):
        from repro.evaluation.settings import ExperimentSettings
        from repro.evaluation.workloads import run_workloads

        settings = ExperimentSettings(warmup_cycles=30, measure_cycles=60)
        result = run_workloads(
            settings, patterns=("uniform",), injectors=("poisson",), load=0.1,
            topology="mesh", topology_params={"width": 8, "height": 2},
        )
        assert result.topology == "mesh"
        assert result.throughput("uniform", "poisson") > 0.0

    def test_run_rejects_structurally_invalid_spec_early(self, capsys):
        # width=5,height=5 passes value validation but cannot tile 16
        # tiles; the CLI must fail with one clean message, not a worker
        # traceback mid-sweep.
        from repro.experiments.__main__ import main

        code = main([
            "run", "workloads",
            "--topology", "mesh:width=5,height=5", "--no-cache",
        ])
        assert code == 1
        assert "do not tile" in capsys.readouterr().out


class TestTopologiesExperiment:
    def test_sweep_covers_the_whole_registry(self):
        from repro.evaluation.settings import ExperimentSettings
        from repro.evaluation.topologies import topologies_sweep

        sweep = topologies_sweep(ExperimentSettings())
        assert sweep.size == len(available_topologies())

    def test_run_topologies_reports_every_family(self):
        from repro.evaluation.settings import ExperimentSettings
        from repro.evaluation.topologies import run_topologies

        settings = ExperimentSettings(warmup_cycles=30, measure_cycles=60)
        result = run_topologies(settings, topologies=("toph", "mesh"), load=0.1)
        report = result.report()
        assert "toph" in report and "mesh" in report
        assert result.throughput("mesh") > 0.0
        assert result.latency("toph") > 0.0

    def test_workload_catalogue_runs_on_a_registered_family(self):
        from repro.evaluation.settings import ExperimentSettings
        from repro.evaluation.workloads import run_workloads

        settings = ExperimentSettings(
            warmup_cycles=30, measure_cycles=60,
            topology="mesh:width=8,height=2",
        )
        result = run_workloads(
            settings, patterns=("uniform",), injectors=("poisson",), load=0.1
        )
        assert result.topology == "mesh"
        assert result.throughput("uniform", "poisson") > 0.0

    def test_batch_runner_batches_parameterized_topologies(self):
        from repro.evaluation.settings import ExperimentSettings
        from repro.evaluation.workloads import workloads_sweep
        from repro.experiments.batch import BatchRunner
        from repro.experiments.executor import Executor

        settings = ExperimentSettings(
            engine="batch", warmup_cycles=30, measure_cycles=60,
            topology="torus:width=4,height=4",
        )
        specs = workloads_sweep(
            settings, patterns=("uniform", "neighbor"), injectors=("poisson",),
            load=0.1,
        ).specs()
        batched = BatchRunner(Executor()).run(specs)
        serial = Executor().run(specs)
        for batch_result, serial_result in zip(batched, serial):
            assert batch_result.flit_log == serial_result.flit_log or (
                batch_result.completed_requests == serial_result.completed_requests
                and batch_result.average_latency == serial_result.average_latency
            )
