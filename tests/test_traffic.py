"""Tests of the synthetic traffic generators and the open-loop traffic simulation."""

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.traffic import (
    LocalBiasedPattern,
    PoissonInjector,
    TrafficSimulation,
    UniformRandomPattern,
    run_load_sweep,
)


class TestPatterns:
    def test_uniform_pattern_covers_many_banks(self):
        config = MemPoolConfig.tiny()
        pattern = UniformRandomPattern(config, seed=1)
        destinations = {pattern.destination(0) for _ in range(500)}
        assert len(destinations) > config.num_banks // 2
        assert all(0 <= bank < config.num_banks for bank in destinations)

    def test_local_biased_pattern_with_p_one_is_always_local(self):
        config = MemPoolConfig.tiny()
        pattern = LocalBiasedPattern(config, p_local=1.0, seed=1)
        for core in range(config.num_cores):
            for _ in range(20):
                bank = pattern.destination(core)
                assert config.tile_of_bank(bank) == config.tile_of_core(core)

    def test_local_biased_pattern_with_p_zero_is_uniform(self):
        config = MemPoolConfig.tiny()
        pattern = LocalBiasedPattern(config, p_local=0.0, seed=1)
        remote = sum(
            config.tile_of_bank(pattern.destination(0)) != 0 for _ in range(400)
        )
        # With 4 tiles, ~75 % of uniform destinations are remote.
        assert remote > 200

    def test_local_probability_is_respected(self):
        config = MemPoolConfig.tiny()
        pattern = LocalBiasedPattern(config, p_local=0.5, seed=2)
        local = sum(
            config.tile_of_bank(pattern.destination(0)) == 0 for _ in range(2000)
        )
        assert 0.5 < local / 2000 < 0.75  # 0.5 + 0.5/num_tiles on average

    def test_invalid_p_local_rejected(self):
        with pytest.raises(ValueError):
            LocalBiasedPattern(MemPoolConfig.tiny(), p_local=1.5)


class TestPoissonInjector:
    def test_zero_rate_generates_nothing(self):
        injector = PoissonInjector(4, 0.0)
        assert sum(injector.arrivals(0, cycle) for cycle in range(100)) == 0

    def test_rate_is_approximately_respected(self):
        injector = PoissonInjector(1, 0.3, seed=3)
        total = sum(injector.arrivals(0, cycle) for cycle in range(5000))
        assert 0.25 < total / 5000 < 0.35

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonInjector(1, -0.1)

    def test_cores_have_independent_processes(self):
        injector = PoissonInjector(2, 0.5, seed=4)
        first = [injector.arrivals(0, cycle) for cycle in range(200)]
        second = [injector.arrivals(1, cycle) for cycle in range(200)]
        assert first != second


class TestTrafficSimulation:
    def test_low_load_throughput_matches_offered_load(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        simulation = TrafficSimulation(cluster, 0.05, seed=1)
        result = simulation.run(warmup_cycles=100, measure_cycles=400)
        assert result.throughput == pytest.approx(0.05, abs=0.02)

    def test_low_load_latency_close_to_zero_load(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        result = TrafficSimulation(cluster, 0.02, seed=1).run(100, 400)
        assert result.average_latency < 7.0

    def test_ideal_topology_latency_is_about_one_cycle(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("topx"))
        result = TrafficSimulation(cluster, 0.2, seed=1).run(100, 400)
        assert result.average_latency < 2.0

    def test_saturation_throughput_below_offered_load(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("top1"))
        result = TrafficSimulation(cluster, 0.8, seed=1).run(100, 400)
        assert result.throughput < 0.5

    def test_local_pattern_reports_local_fraction(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        pattern = LocalBiasedPattern(cluster.config, p_local=1.0, seed=1)
        result = TrafficSimulation(cluster, 0.2, pattern=pattern, seed=1).run(50, 200)
        assert result.local_fraction == pytest.approx(1.0)

    def test_result_row_shape(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        result = TrafficSimulation(cluster, 0.1, seed=1).run(50, 200)
        row = result.as_row()
        assert len(row) == 4
        assert row[0] == 0.1

    def test_run_load_sweep_builds_fresh_clusters(self):
        results = run_load_sweep(
            lambda: MemPoolCluster(MemPoolConfig.tiny("toph")),
            loads=[0.05, 0.1],
            warmup_cycles=50,
            measure_cycles=200,
        )
        assert [result.injected_load for result in results] == [0.05, 0.1]
        assert results[1].throughput > results[0].throughput


class TestTrafficResultValidation:
    """Degenerate measurement windows are rejected at construction."""

    def _kwargs(self, **overrides):
        kwargs = dict(
            topology="toph", injected_load=0.1, measured_cycles=100,
            num_cores=16, generated_requests=10, injected_requests=10,
            completed_requests=10, average_latency=5.0, p95_latency=7,
            max_latency=9, local_fraction=0.0,
        )
        kwargs.update(overrides)
        return kwargs

    def test_zero_measurement_window_rejected(self):
        from repro.traffic.simulation import TrafficResult

        with pytest.raises(ValueError, match="measurement window"):
            TrafficResult(**self._kwargs(measured_cycles=0))

    def test_zero_cores_rejected(self):
        from repro.traffic.simulation import TrafficResult

        with pytest.raises(ValueError, match="at least one core"):
            TrafficResult(**self._kwargs(num_cores=0))

    def test_simulation_refuses_empty_window(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        with pytest.raises(ValueError, match="measurement window"):
            TrafficSimulation(cluster, 0.1, seed=1).run(50, 0)

    def test_record_flits_attaches_completion_log(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        result = TrafficSimulation(cluster, 0.2, seed=1).run(
            50, 200, record_flits=True
        )
        assert result.flit_log
        for record in result.flit_log:
            flit_id, core, bank, created, injected, completed = record
            assert 0 <= created <= injected <= completed
        # Without the flag the log stays off the result (and out of caches).
        assert TrafficSimulation(
            MemPoolCluster(MemPoolConfig.tiny("toph")), 0.2, seed=1
        ).run(50, 200).flit_log is None
