"""Malformed-spec error paths of both CLIs and the registries behind them.

Every bad ``--topology`` spec, pattern/injector name or parameter value
must fail with a message that names the offending key and lists the valid
choices — at spec-parse time on the CLIs (exit code 1, no sweep
expansion), and with the same contextual wording from the registry
helpers that every other layer routes through.
"""

from __future__ import annotations

import pytest

from repro.core.config import MemPoolConfig
from repro.topologies.registry import parse_topology_spec
from repro.workloads.registry import make_injector, make_pattern


class TestTopologySpecParsing:
    """Registry-level ``name[:k=v,...]`` parsing errors."""

    def test_empty_name_lists_catalogue(self):
        with pytest.raises(
            ValueError, match="missing the topology name.*toph"
        ):
            parse_topology_spec(":width=2")

    def test_unknown_name_lists_catalogue(self):
        with pytest.raises(ValueError, match="unknown topology 'warp'.*mesh"):
            parse_topology_spec("warp")

    def test_item_missing_equals_names_the_part(self):
        with pytest.raises(
            ValueError, match="malformed parameter 'width'.*missing the '='"
        ):
            parse_topology_spec("mesh:width")

    def test_item_missing_value_names_the_part(self):
        with pytest.raises(
            ValueError, match="malformed parameter 'width='.*missing the value"
        ):
            parse_topology_spec("mesh:width=")

    def test_item_missing_key_names_the_part(self):
        with pytest.raises(ValueError, match="missing the key"):
            parse_topology_spec("mesh:=2")

    def test_malformed_item_lists_accepted_params(self):
        with pytest.raises(ValueError, match="accepted parameters for 'mesh'"):
            parse_topology_spec("mesh:width")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate parameter 'width'"):
            parse_topology_spec("mesh:width=2,width=4")

    def test_unknown_param_names_key_and_lists_accepted(self):
        with pytest.raises(
            ValueError,
            match="unknown parameter\\(s\\) depth for topology 'mesh'; "
                  "accepted: height, width",
        ):
            parse_topology_spec("mesh:depth=2")

    def test_invalid_value_names_key_and_family(self):
        with pytest.raises(
            ValueError,
            match="invalid value for parameter 'width' of topology 'mesh'",
        ):
            parse_topology_spec("mesh:width=0,height=2")

    def test_parameterless_family_rejects_any_param(self):
        with pytest.raises(
            ValueError, match="for topology 'ring'; accepted: none"
        ):
            parse_topology_spec("ring:width=2")


class TestWorkloadRegistryErrors:
    """``make_pattern`` / ``make_injector`` contextual error messages."""

    def test_unknown_pattern_lists_catalogue(self):
        with pytest.raises(
            ValueError, match="unknown destination pattern 'nope'.*uniform"
        ):
            make_pattern("nope", MemPoolConfig.tiny())

    def test_unknown_injector_lists_catalogue(self):
        with pytest.raises(
            ValueError, match="unknown injection process 'nope'.*poisson"
        ):
            make_injector("nope", 4, 0.3)

    def test_unknown_pattern_param_names_key(self):
        with pytest.raises(
            ValueError,
            match="unknown parameter\\(s\\) p_local for workload 'uniform'; "
                  "accepted: none",
        ):
            make_pattern("uniform", MemPoolConfig.tiny(), p_local=0.5)

    def test_invalid_pattern_value_names_key_and_workload(self):
        with pytest.raises(
            ValueError,
            match="invalid value for parameter 'p_local' of workload "
                  "'local_biased'",
        ):
            make_pattern("local_biased", MemPoolConfig.tiny(), p_local=2.0)

    def test_invalid_hotspot_count_names_key(self):
        with pytest.raises(
            ValueError,
            match="invalid value for parameter 'num_hotspots' of workload "
                  "'hotspot'",
        ):
            make_pattern("hotspot", MemPoolConfig.tiny(), num_hotspots=0)

    def test_invalid_injector_value_names_key_and_workload(self):
        with pytest.raises(
            ValueError,
            match="invalid value for parameter 'burst_rate' of workload "
                  "'bursty'",
        ):
            make_injector("bursty", 4, 0.3, burst_rate=1.5)


#: Malformed --topology specs and a fragment their error must contain.
BAD_TOPOLOGY_SPECS = (
    ("warp", "unknown topology 'warp'"),
    ("mesh:width", "missing the '='"),
    ("mesh:width=", "missing the value"),
    ("mesh:=2", "missing the key"),
    ("mesh:width=2,width=4", "duplicate parameter 'width'"),
    ("mesh:depth=2", "unknown parameter(s) depth"),
    ("mesh:width=0,height=2", "invalid value for parameter 'width'"),
    ("ring:width=2", "accepted: none"),
)


class TestEvaluationCliTopologyErrors:
    """``python -m repro.evaluation --topology <bad>`` exits 1 with context."""

    @pytest.mark.parametrize("spec, fragment", BAD_TOPOLOGY_SPECS)
    def test_bad_spec_fails_before_running(self, capsys, spec, fragment):
        from repro.evaluation.__main__ import main

        assert main(["fig10", "--topology", spec]) == 1
        assert fragment in capsys.readouterr().out

    def test_structurally_invalid_spec_fails_at_probe(self, capsys):
        from repro.evaluation.__main__ import main

        # width*height misses the tile count — only buildable checks catch it.
        assert main(["fig10", "--topology", "mesh:width=3,height=3"]) == 1
        assert "mesh" in capsys.readouterr().out

    def test_unknown_pattern_choice_exits_two(self):
        from repro.evaluation.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["fig10", "--pattern", "nope"])
        assert excinfo.value.code == 2

    def test_unknown_injector_choice_exits_two(self):
        from repro.evaluation.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["fig10", "--injector", "nope"])
        assert excinfo.value.code == 2


class TestExperimentsCliTopologyErrors:
    """``python -m repro.experiments run --topology <bad>`` mirrors it."""

    @pytest.mark.parametrize("spec, fragment", BAD_TOPOLOGY_SPECS)
    def test_bad_spec_fails_before_running(self, capsys, spec, fragment):
        from repro.experiments.__main__ import main

        assert main(["run", "fig10", "--no-cache", "--topology", spec]) == 1
        assert fragment in capsys.readouterr().out

    def test_unknown_pattern_choice_exits_two(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig10", "--pattern", "nope"])
        assert excinfo.value.code == 2

    def test_unknown_experiment_name_exits_one(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["run", "fig99", "--no-cache"]) == 1
        assert "fig99" in capsys.readouterr().out
