"""Tests of the functional Snitch ISS (instruction semantics)."""

import pytest

from repro.core.config import MemPoolConfig
from repro.core.memory import SharedL1Memory
from repro.snitch.assembler import assemble
from repro.snitch.core import ExecutionError, SnitchCore
from repro.snitch.isa import Instruction, InstructionClass, classify


@pytest.fixture
def memory():
    return SharedL1Memory(MemPoolConfig.tiny())


def run_source(source, memory, symbols=None, registers=None, max_instructions=100_000):
    """Assemble and run ``source`` to completion, return the core."""
    program = assemble(source, symbols=symbols)
    core = SnitchCore(program, core_id=0, sp=0x1000)
    if registers:
        for index, value in registers.items():
            core.registers.write(index, value)
    core.run(memory, max_instructions=max_instructions)
    return core


class TestIsaClassification:
    def test_classes(self):
        assert classify("add") is InstructionClass.ALU
        assert classify("mul") is InstructionClass.MUL
        assert classify("div") is InstructionClass.DIV
        assert classify("lw") is InstructionClass.LOAD
        assert classify("sw") is InstructionClass.STORE
        assert classify("amoadd.w") is InstructionClass.AMO
        assert classify("beq") is InstructionClass.BRANCH
        assert classify("jal") is InstructionClass.JUMP
        assert classify("ecall") is InstructionClass.SYSTEM

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            Instruction(mnemonic="fmadd")

    def test_is_memory_and_terminator_flags(self):
        assert Instruction(mnemonic="lw").is_memory
        assert not Instruction(mnemonic="add").is_memory
        assert Instruction(mnemonic="ecall").is_terminator


class TestArithmetic:
    def test_add_sub(self, memory):
        core = run_source("li a0, 20\nli a1, 22\nadd a2, a0, a1\nsub a3, a0, a1\necall", memory)
        assert core.registers.read(12) == 42
        assert core.registers.read(13) == -2

    def test_logic_ops(self, memory):
        core = run_source(
            "li a0, 0xF0\nli a1, 0x0F\nor a2, a0, a1\nand a3, a0, a1\nxor a4, a0, a1\necall",
            memory,
        )
        assert core.registers.read(12) == 0xFF
        assert core.registers.read(13) == 0
        assert core.registers.read(14) == 0xFF

    def test_shifts(self, memory):
        core = run_source(
            "li a0, -8\nsrai a1, a0, 1\nsrli a2, a0, 28\nslli a3, a0, 1\necall", memory
        )
        assert core.registers.read(11) == -4
        assert core.registers.read(12) == 0xF
        assert core.registers.read(13) == -16

    def test_set_less_than(self, memory):
        core = run_source(
            "li a0, -5\nli a1, 3\nslt a2, a0, a1\nsltu a3, a0, a1\nslti a4, a1, 10\necall",
            memory,
        )
        assert core.registers.read(12) == 1
        assert core.registers.read(13) == 0  # 0xFFFFFFFB > 3 unsigned
        assert core.registers.read(14) == 1

    def test_lui(self, memory):
        core = run_source("lui a0, 0x12345\necall", memory)
        assert core.registers.read_unsigned(10) == 0x12345000

    def test_overflow_wraps(self, memory):
        core = run_source("li a0, 0x7fffffff\naddi a0, a0, 1\necall", memory)
        assert core.registers.read(10) == -(2**31)


class TestMultiplyDivide:
    def test_mul(self, memory):
        core = run_source("li a0, -7\nli a1, 6\nmul a2, a0, a1\necall", memory)
        assert core.registers.read(12) == -42

    def test_mulh_variants(self, memory):
        core = run_source(
            "li a0, -1\nli a1, -1\nmulh a2, a0, a1\nmulhu a3, a0, a1\necall", memory
        )
        assert core.registers.read(12) == 0
        assert core.registers.read_unsigned(13) == 0xFFFFFFFE

    def test_div_rem_round_toward_zero(self, memory):
        core = run_source(
            "li a0, -7\nli a1, 2\ndiv a2, a0, a1\nrem a3, a0, a1\necall", memory
        )
        assert core.registers.read(12) == -3
        assert core.registers.read(13) == -1

    def test_divide_by_zero_follows_riscv_semantics(self, memory):
        core = run_source("li a0, 9\nli a1, 0\ndiv a2, a0, a1\nrem a3, a0, a1\necall", memory)
        assert core.registers.read(12) == -1
        assert core.registers.read(13) == 9

    def test_unsigned_division(self, memory):
        core = run_source("li a0, -2\nli a1, 3\ndivu a2, a0, a1\nremu a3, a0, a1\necall", memory)
        assert core.registers.read_unsigned(12) == 0xFFFFFFFE // 3
        assert core.registers.read_unsigned(13) == 0xFFFFFFFE % 3


class TestMemoryInstructions:
    def test_word_load_store(self, memory):
        core = run_source("li a0, 0x100\nli a1, -99\nsw a1, 0(a0)\nlw a2, 0(a0)\necall", memory)
        assert core.registers.read(12) == -99
        assert memory.read_signed(0x100) == -99

    def test_byte_and_halfword_access(self, memory):
        core = run_source(
            """
            li a0, 0x200
            li a1, 0x8081
            sh a1, 0(a0)
            lb a2, 0(a0)
            lbu a3, 0(a0)
            lh a4, 0(a0)
            lhu a5, 0(a0)
            ecall
            """,
            memory,
        )
        assert core.registers.read(12) == -127  # 0x81 sign-extended
        assert core.registers.read(13) == 0x81
        assert core.registers.read(14) == -32639  # 0x8081 sign-extended
        assert core.registers.read(15) == 0x8081

    def test_unaligned_word_access_rejected(self, memory):
        with pytest.raises(ExecutionError, match="unaligned"):
            run_source("li a0, 0x102\nlw a1, 0(a0)\necall", memory)

    def test_amoadd(self, memory):
        memory.write_word(0x300, 5)
        core = run_source("li a0, 0x300\nli a1, 7\namoadd.w a2, a1, (a0)\necall", memory)
        assert core.registers.read(12) == 5
        assert memory.read_word(0x300) == 12

    def test_amoswap(self, memory):
        memory.write_word(0x300, 5)
        core = run_source("li a0, 0x300\nli a1, 7\namoswap.w a2, a1, (a0)\necall", memory)
        assert core.registers.read(12) == 5
        assert memory.read_word(0x300) == 7


class TestControlFlow:
    def test_loop_countdown(self, memory):
        core = run_source(
            """
            li a0, 10
            li a1, 0
            loop:
            add a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            ecall
            """,
            memory,
        )
        assert core.registers.read(11) == 55

    def test_branch_comparisons(self, memory):
        core = run_source(
            """
            li a0, -1
            li a1, 1
            li a2, 0
            bltu a0, a1, not_taken
            addi a2, a2, 1      # executed: -1 unsigned is large
            not_taken:
            blt a0, a1, taken
            addi a2, a2, 100
            taken:
            ecall
            """,
            memory,
        )
        assert core.registers.read(12) == 1

    def test_jal_links_return_address(self, memory):
        core = run_source(
            """
            jal ra, target
            ecall
            target:
            addi a0, zero, 7
            jalr zero, ra, 0
            """,
            memory,
        )
        assert core.registers.read(10) == 7

    def test_function_call_with_stack(self, memory):
        core = run_source(
            """
            li a0, 5
            call double
            ecall
            double:
            addi sp, sp, -4
            sw ra, 0(sp)
            add a0, a0, a0
            lw ra, 0(sp)
            addi sp, sp, 4
            ret
            """,
            memory,
        )
        assert core.registers.read(10) == 10

    def test_falling_off_the_end_halts(self, memory):
        core = run_source("addi a0, zero, 1", memory)
        assert core.halted

    def test_invalid_jump_target_rejected(self, memory):
        with pytest.raises(ExecutionError, match="invalid pc"):
            run_source("li a0, 0x5000\njalr zero, a0, 0\necall", memory)

    def test_runaway_program_detected(self, memory):
        with pytest.raises(ExecutionError, match="exceeded"):
            run_source("spin:\nj spin", memory, max_instructions=1000)

    def test_instruction_mix_recorded(self, memory):
        core = run_source("li a0, 3\nmul a1, a0, a0\nsw a1, 0(zero)\necall", memory)
        assert core.instruction_mix[InstructionClass.MUL] == 1
        assert core.instruction_mix[InstructionClass.STORE] == 1

    def test_execute_after_halt_rejected(self, memory):
        core = run_source("ecall", memory)
        with pytest.raises(ExecutionError):
            core.execute(core.program.at(0), memory)
