"""End-to-end tests: assembly programs running on the full simulation stack."""

import numpy as np
import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.core.system import MemPoolSystem
from repro.snitch import assemble
from repro.snitch.agent import make_snitch_agents
from repro.snitch.programs import (
    dot_product_source,
    matmul_source,
    reduction_tree_source,
    vector_add_source,
)


def run_parallel_program(cluster, source, symbols):
    program = assemble(source, symbols=symbols)
    agents = make_snitch_agents(
        cluster,
        program,
        argument_builder=lambda core: {10: core, 11: cluster.config.num_cores},
    )
    return MemPoolSystem(cluster, agents).run()


@pytest.fixture
def cluster():
    return MemPoolCluster(MemPoolConfig.tiny("toph"))


class TestVectorAdd:
    def test_result_matches_numpy(self, cluster):
        length = 64
        a = np.arange(length, dtype=np.int64)
        b = 3 * np.arange(length, dtype=np.int64) - 11
        region_a = cluster.layout.alloc_shared("a", length * 4)
        region_b = cluster.layout.alloc_shared("b", length * 4)
        region_c = cluster.layout.alloc_shared("c", length * 4)
        cluster.memory.write_words(region_a.base, a)
        cluster.memory.write_words(region_b.base, b)
        result = run_parallel_program(
            cluster,
            vector_add_source(),
            {"vec_a": region_a.base, "vec_b": region_b.base,
             "vec_c": region_c.base, "vec_len": length},
        )
        assert np.array_equal(cluster.memory.read_words(region_c.base, length), a + b)
        assert result.active_cores == cluster.config.num_cores

    def test_all_cores_share_the_work(self, cluster):
        length = 64
        region_a = cluster.layout.alloc_shared("a", length * 4)
        region_b = cluster.layout.alloc_shared("b", length * 4)
        region_c = cluster.layout.alloc_shared("c", length * 4)
        result = run_parallel_program(
            cluster,
            vector_add_source(),
            {"vec_a": region_a.base, "vec_b": region_b.base,
             "vec_c": region_c.base, "vec_len": length},
        )
        loads_per_core = [stats.loads for stats in result.core_stats]
        assert min(loads_per_core) > 0
        assert max(loads_per_core) == min(loads_per_core)


class TestDotProduct:
    def test_atomic_reduction_matches_numpy(self, cluster):
        length = 48
        rng = np.random.default_rng(7)
        a = rng.integers(-50, 50, length)
        b = rng.integers(-50, 50, length)
        region_a = cluster.layout.alloc_shared("a", length * 4)
        region_b = cluster.layout.alloc_shared("b", length * 4)
        region_r = cluster.layout.alloc_shared("r", 4)
        cluster.memory.write_words(region_a.base, a)
        cluster.memory.write_words(region_b.base, b)
        run_parallel_program(
            cluster,
            dot_product_source(),
            {"vec_a": region_a.base, "vec_b": region_b.base,
             "vec_len": length, "dot_result": region_r.base},
        )
        assert cluster.memory.read_signed(region_r.base) == int(np.dot(a, b))


class TestReduction:
    def test_sum_matches_numpy(self, cluster):
        length = 100
        values = np.arange(length, dtype=np.int64) - 17
        region = cluster.layout.alloc_shared("v", length * 4)
        result_region = cluster.layout.alloc_shared("sum", 4)
        cluster.memory.write_words(region.base, values)
        run_parallel_program(
            cluster,
            reduction_tree_source(),
            {"vec_a": region.base, "vec_len": length, "sum_result": result_region.base},
        )
        assert cluster.memory.read_signed(result_region.base) == int(values.sum())


class TestAssemblyMatmul:
    def test_matches_numpy_on_all_topologies(self):
        size = 8
        rng = np.random.default_rng(3)
        a = rng.integers(-9, 9, (size, size))
        b = rng.integers(-9, 9, (size, size))
        cycle_counts = {}
        for topology in ("top1", "toph", "topx"):
            cluster = MemPoolCluster(MemPoolConfig.tiny(topology))
            region_a = cluster.layout.alloc_shared("a", size * size * 4)
            region_b = cluster.layout.alloc_shared("b", size * size * 4)
            region_c = cluster.layout.alloc_shared("c", size * size * 4)
            cluster.memory.write_matrix(region_a.base, a)
            cluster.memory.write_matrix(region_b.base, b)
            result = run_parallel_program(
                cluster,
                matmul_source(),
                {"mat_a": region_a.base, "mat_b": region_b.base,
                 "mat_c": region_c.base, "mat_n": size},
            )
            product = cluster.memory.read_matrix(region_c.base, size, size)
            assert np.array_equal(product, a @ b)
            cycle_counts[topology] = result.cycles
        # The ideal crossbar must be at least as fast as the real topologies.
        assert cycle_counts["topx"] <= cycle_counts["toph"]
        assert cycle_counts["topx"] <= cycle_counts["top1"]
