"""Tests of the pluggable workload subsystem (repro.workloads)."""

from __future__ import annotations

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.core.system import MemPoolSystem
from repro.evaluation.settings import ExperimentSettings
from repro.experiments.spec import ExperimentSpec
from repro.traffic import TrafficSimulation
from repro.workloads import (
    BurstyInjector,
    HotspotPattern,
    PoissonInjector,
    available_injectors,
    available_patterns,
    injector_catalogue,
    make_injector,
    make_pattern,
    pattern_catalogue,
    substream,
    substream_seed,
)
from repro.workloads.registry import injector_entry, pattern_entry

# The default-constructible catalogue: entries with required parameters
# (trace replay needs a recorded file) are exercised by tests/test_trace.py
# over real recordings instead of the generic contracts below.
DEFAULT_PATTERNS = tuple(
    name for name in available_patterns() if not pattern_entry(name).required
)
DEFAULT_INJECTORS = tuple(
    name for name in available_injectors() if not injector_entry(name).required
)


class TestRngSubstreams:
    def test_substream_seed_is_deterministic(self):
        assert substream_seed(5, "pattern", 3) == substream_seed(5, "pattern", 3)

    def test_substream_seed_separates_tags_and_seeds(self):
        seen = {
            substream_seed(seed, role, core)
            for seed in (0, 1)
            for role in ("pattern", "injector")
            for core in range(8)
        }
        assert len(seen) == 2 * 2 * 8  # no collisions across the grid

    def test_substream_streams_are_reproducible(self):
        first = substream(9, "x", 1)
        second = substream(9, "x", 1)
        assert [first.random() for _ in range(5)] == [
            second.random() for _ in range(5)
        ]

    def test_string_tags_do_not_depend_on_hash_randomisation(self):
        # blake2b-based folding: a known-stable value guards against an
        # accidental switch to PYTHONHASHSEED-dependent hash().
        assert substream_seed(0, "pattern") == substream_seed(0, "pattern")
        assert substream_seed(0, "pattern") != substream_seed(0, "injector")

    def test_invalid_tag_type_rejected(self):
        with pytest.raises(TypeError):
            substream_seed(0, 1.5)


class TestRegistry:
    def test_catalogue_minimum_size(self):
        # The acceptance criteria: >= 8 destination patterns and >= 3
        # injection processes runnable end to end.
        assert len(available_patterns()) >= 8
        assert len(available_injectors()) >= 3

    def test_unknown_pattern_lists_available(self):
        with pytest.raises(ValueError, match="unknown destination pattern"):
            make_pattern("nope", MemPoolConfig.tiny())

    def test_unknown_injector_lists_available(self):
        with pytest.raises(ValueError, match="unknown injection process"):
            make_injector("nope", 4, 0.1)

    def test_unknown_parameter_rejected_by_name(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_pattern("local_biased", MemPoolConfig.tiny(), p_locl=0.5)

    def test_parameterless_pattern_rejects_any_parameter(self):
        with pytest.raises(ValueError, match="accepted: none"):
            make_pattern("uniform", MemPoolConfig.tiny(), p_local=0.5)

    def test_invalid_parameter_value_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("local_biased", MemPoolConfig.tiny(), p_local=1.5)
        with pytest.raises(ValueError):
            make_pattern("hotspot", MemPoolConfig.tiny(), p_hot=-0.1)
        with pytest.raises(ValueError):
            make_injector("bursty", 4, 0.1, burst_len=0.5)

    def test_catalogue_entries_carry_summaries(self):
        for entry in pattern_catalogue() + injector_catalogue():
            assert entry.summary


class TestPatternSemantics:
    @pytest.mark.parametrize("name", DEFAULT_PATTERNS)
    def test_destinations_in_range_and_batched_equals_scalar(self, name):
        """Scalar and batched APIs are draw-order equivalent for every pattern."""
        config = MemPoolConfig.tiny("toph")
        core_ids = [core % config.num_cores for core in range(3 * config.num_cores)]
        scalar_pattern = make_pattern(name, config, seed=21)
        batched_pattern = make_pattern(name, config, seed=21)
        scalar = [scalar_pattern.destination(core) for core in core_ids]
        batched = list(batched_pattern.destinations(core_ids))
        assert scalar == batched
        assert all(0 <= bank < config.num_banks for bank in scalar)

    def test_bit_complement_crosses_the_machine(self):
        config = MemPoolConfig.tiny("toph")
        pattern = make_pattern("bit_complement", config)
        for core in range(config.num_cores):
            src = config.tile_of_core(core)
            dest = config.tile_of_bank(pattern.destination(core))
            assert dest == (~src & (config.num_tiles - 1))

    def test_bit_reverse_is_an_involution_on_tiles(self):
        config = MemPoolConfig.scaled("toph")  # 16 tiles
        pattern = make_pattern("bit_reverse", config)
        for core in range(0, config.num_cores, config.cores_per_tile):
            src = config.tile_of_core(core)
            once = config.tile_of_bank(pattern.destination(core))
            twice_core = once * config.cores_per_tile
            assert config.tile_of_bank(pattern.destination(twice_core)) == src

    def test_tornado_offset(self):
        config = MemPoolConfig.scaled("toph")  # 16 tiles -> offset 7
        pattern = make_pattern("tornado", config)
        offset = (config.num_tiles + 1) // 2 - 1
        for core in (0, 5, 63):
            src = config.tile_of_core(core)
            dest = config.tile_of_bank(pattern.destination(core))
            assert dest == (src + offset) % config.num_tiles

    def test_neighbor_targets_next_tile(self):
        config = MemPoolConfig.tiny("toph")
        pattern = make_pattern("neighbor", config)
        for core in range(config.num_cores):
            src = config.tile_of_core(core)
            dest = config.tile_of_bank(pattern.destination(core))
            assert dest == (src + 1) % config.num_tiles

    def test_deterministic_patterns_are_load_free_of_rng(self):
        config = MemPoolConfig.tiny("toph")
        pattern = make_pattern("transpose", config, seed=1)
        first = [pattern.destination(core) for core in range(config.num_cores)]
        second = [pattern.destination(core) for core in range(config.num_cores)]
        assert first == second  # no stream consumed, no drift

    def test_hotspot_rejects_more_hotspots_than_banks(self):
        config = MemPoolConfig.tiny("toph")
        with pytest.raises(ValueError, match="cannot exceed"):
            make_pattern("hotspot", config, num_hotspots=config.num_banks + 1)

    def test_hotspot_concentrates_traffic(self):
        config = MemPoolConfig.tiny("toph")
        pattern = HotspotPattern(config, p_hot=1.0, num_hotspots=2, seed=3)
        hot = set(pattern._hot_banks)
        assert len(hot) == 2
        destinations = {pattern.destination(core) for core in range(config.num_cores)}
        assert destinations <= hot

    def test_hotspot_cores_use_disjoint_substreams(self):
        config = MemPoolConfig.tiny("toph")
        pattern = HotspotPattern(config, p_hot=0.5, num_hotspots=1, seed=3)
        streams = [
            tuple(pattern.destination(core) for _ in range(20))
            for core in range(4)
        ]
        assert len(set(streams)) == len(streams)  # aliasing would repeat one


class TestInjectionProcesses:
    @pytest.mark.parametrize("rate", [0.05, 0.3, 0.9])
    @pytest.mark.parametrize("seed", [0, 7, 123])
    @pytest.mark.parametrize("num_cores", [1, 4, 16])
    def test_poisson_arrivals_batch_matches_scalar(self, rate, seed, num_cores):
        """Property test: the vector fast path's batched Poisson stream is
        identical to the legacy per-core stream across rates, seeds and
        core counts (satellite contract of the engine equivalence)."""
        scalar = PoissonInjector(num_cores, rate, seed=seed)
        batched = PoissonInjector(num_cores, rate, seed=seed)
        for cycle in range(120):
            expected = [
                (core, scalar.arrivals(core, cycle))
                for core in range(num_cores)
            ]
            expected = [(core, count) for core, count in expected if count]
            assert batched.arrivals_batch(cycle) == expected, (rate, seed, cycle)

    @pytest.mark.parametrize("name", DEFAULT_INJECTORS)
    def test_every_injector_batch_matches_scalar(self, name):
        scalar = make_injector(name, 8, 0.4, seed=11)
        batched = make_injector(name, 8, 0.4, seed=11)
        for cycle in range(100):
            expected = [
                (core, scalar.arrivals(core, cycle)) for core in range(8)
            ]
            expected = [(core, count) for core, count in expected if count]
            assert batched.arrivals_batch(cycle) == expected

    @pytest.mark.parametrize("name", DEFAULT_INJECTORS)
    def test_zero_rate_generates_nothing(self, name):
        injector = make_injector(name, 4, 0.0, seed=2)
        assert all(
            injector.arrivals(core, cycle) == 0
            for core in range(4)
            for cycle in range(50)
        )

    @pytest.mark.parametrize("name", DEFAULT_INJECTORS)
    def test_long_run_rate_is_respected(self, name):
        cycles, cores, rate = 4000, 4, 0.25
        injector = make_injector(name, cores, rate, seed=5)
        total = sum(
            count for cycle in range(cycles)
            for _, count in injector.arrivals_batch(cycle)
        )
        assert rate * 0.85 < total / (cycles * cores) < rate * 1.15

    def test_bernoulli_caps_rate_at_one(self):
        with pytest.raises(ValueError):
            make_injector("bernoulli", 4, 1.5)

    def test_bursty_rate_cannot_exceed_burst_rate(self):
        with pytest.raises(ValueError, match="cannot exceed burst_rate"):
            BurstyInjector(4, 0.5, burst_rate=0.4)

    def test_bursty_at_full_duty_is_always_on(self):
        """duty = 1 must deliver the full rate, not burst_len/(burst_len+1) of it."""
        injector = BurstyInjector(2, 1.0, seed=4, burst_len=8.0)
        total = sum(
            count for cycle in range(500)
            for _, count in injector.arrivals_batch(cycle)
        )
        assert total == 2 * 500  # burst_rate 1.0, never OFF

    def test_injector_core_rng_is_cached_per_core(self):
        """Repeated core_rng calls continue one stream (no re-seeding trap)."""
        from repro.workloads.base import InjectionProcess

        process = InjectionProcess(2, 0.5, seed=6)
        assert process.core_rng(0) is process.core_rng(0)
        first, second = process.core_rng(1).random(), process.core_rng(1).random()
        assert first != second  # a re-seeded stream would repeat itself

    def test_bursty_is_burstier_than_bernoulli(self):
        """Same mean rate, higher variance of per-window arrival counts."""

        def window_variance(injector, windows=200, width=16):
            counts = []
            cycle = 0
            for _ in range(windows):
                count = 0
                for _ in range(width):
                    count += sum(n for _, n in injector.arrivals_batch(cycle))
                    cycle += 1
                counts.append(count)
            mean = sum(counts) / len(counts)
            return sum((c - mean) ** 2 for c in counts) / len(counts)

        bursty = make_injector("bursty", 4, 0.2, seed=9, burst_len=16.0)
        bernoulli = make_injector("bernoulli", 4, 0.2, seed=9)
        assert window_variance(bursty) > 1.5 * window_variance(bernoulli)


class TestWorkloadBearingSettings:
    def test_as_params_round_trips_through_settings(self):
        settings = ExperimentSettings(
            seed=3, engine="vector", pattern="tornado", injector="bursty"
        )
        assert ExperimentSettings(**settings.as_params()) == settings

    def test_unknown_pattern_rejected_early(self):
        with pytest.raises(ValueError, match="MEMPOOL_PATTERN"):
            ExperimentSettings(pattern="nope")

    def test_unknown_injector_rejected_early(self):
        with pytest.raises(ValueError, match="MEMPOOL_INJECTOR"):
            ExperimentSettings(injector="nope")

    def test_cache_keys_cannot_collide_across_workloads(self):
        """Specs differing only in workload choice hash to distinct keys."""
        def spec(**overrides):
            params = {"topology": "toph", "load": 0.2, "seed": 0,
                      "pattern": "uniform", "injector": "poisson"}
            params.update(overrides)
            return ExperimentSpec(
                runner="repro.evaluation.fig5:simulate_fig5_point", params=params
            )

        keys = {
            spec().key,
            spec(pattern="tornado").key,
            spec(injector="bursty").key,
            spec(pattern="tornado", injector="bursty").key,
        }
        assert len(keys) == 4


class TestDefaultWorkloadsBitIdentical:
    """The refactor must not move a single flit of the paper's figures.

    The expected values below were captured from the pre-refactor seed
    state (legacy engine, fixed seeds) and both engines must keep
    reproducing them exactly — this is the fixed-seed contract of the
    grandfathered uniform / local_biased / poisson workloads.
    """

    GOLDEN_FIG5 = (3870, 3868, 3865, 4.894178525226403, 7, 12, 0.0646921278254092)
    GOLDEN_FIG6 = (5718, 5716, 5712, 4.184348739495811, 7, 14, 0.3008033715264059)

    @staticmethod
    def _signature(result):
        return (
            result.generated_requests,
            result.injected_requests,
            result.completed_requests,
            result.average_latency,
            result.p95_latency,
            result.max_latency,
            result.local_fraction,
        )

    @pytest.mark.parametrize("engine", ["legacy", "vector"])
    def test_fig5_default_point_unchanged(self, engine):
        from repro.evaluation.fig5 import simulate_fig5_point

        result = simulate_fig5_point(
            topology="toph", load=0.2, warmup_cycles=100, measure_cycles=300,
            engine=engine,
        )
        assert self._signature(result) == self.GOLDEN_FIG5

    @pytest.mark.parametrize("engine", ["legacy", "vector"])
    def test_fig6_default_point_unchanged(self, engine):
        from repro.evaluation.fig6 import simulate_fig6_point

        result = simulate_fig6_point(
            p_local=0.25, load=0.3, warmup_cycles=100, measure_cycles=300,
            engine=engine,
        )
        assert self._signature(result) == self.GOLDEN_FIG6


class TestWorkloadsThroughEverySurface:
    def test_string_workloads_through_traffic_simulation(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        simulation = TrafficSimulation(
            cluster, 0.2, pattern="local_biased", seed=1,
            pattern_params={"p_local": 1.0}, injector="bernoulli",
        )
        result = simulation.run(50, 200)
        assert result.local_fraction == pytest.approx(1.0)

    def test_mismatched_injector_rate_rejected(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        injector = make_injector("poisson", cluster.config.num_cores, 0.5)
        with pytest.raises(ValueError, match="disagrees"):
            TrafficSimulation(cluster, 0.2, injector=injector)

    def test_pattern_params_with_instance_rejected(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        pattern = make_pattern("uniform", cluster.config)
        with pytest.raises(ValueError, match="registry name"):
            TrafficSimulation(
                cluster, 0.2, pattern=pattern, pattern_params={"p_local": 1.0}
            )

    def test_cluster_traffic_simulation_entry_point(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("top1"), engine="vector")
        result = cluster.traffic_simulation(
            0.2, pattern="shuffle", injector="poisson", seed=4
        ).run(50, 150)
        assert result.completed_requests > 0

    def test_synthetic_system_is_engine_exact(self):
        outcomes = {}
        for engine in ("legacy", "vector"):
            cluster = MemPoolCluster(MemPoolConfig.tiny("toph"), engine=engine)
            system = MemPoolSystem.synthetic(
                cluster, 0.25, pattern="bit_reverse", injector="bernoulli",
                requests_per_core=6, seed=8,
            )
            result = system.run()
            outcomes[engine] = (
                result.cycles,
                result.injected_requests,
                result.completed_requests,
            )
        assert outcomes["legacy"] == outcomes["vector"]
        assert outcomes["legacy"][1] == 6 * 16  # every load issued

    def test_synthetic_system_rejects_zero_rate(self):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        with pytest.raises(ValueError, match="positive injection rate"):
            MemPoolSystem.synthetic(cluster, 0.0)

    def test_workload_catalogue_runs_through_sweep_engine(self):
        from repro.evaluation.workloads import run_workloads

        settings = ExperimentSettings(warmup_cycles=30, measure_cycles=80)
        result = run_workloads(
            settings, patterns=("uniform", "tornado"), injectors=("bernoulli",),
            load=0.1,
        )
        assert set(result.results) == {
            ("uniform", "bernoulli"), ("tornado", "bernoulli")
        }
        assert "Workload catalogue" in result.report()
