"""Bounded differential-fuzz campaign over the three timing engines.

The CI entry point of :mod:`repro.validation.fuzz`: Hypothesis samples
``FUZZ_BUDGET`` configurations from the registries' full space (plus a
degree-skewed hotspot slice) and every sample must produce flit-for-flit
identical results on the legacy, vector and batch engines.  A failure
shrinks deterministically and raises a
:class:`~repro.validation.fuzz.DivergenceError` whose message embeds the
one-line ``python -m repro.validation --replay`` reproducer (and, when
``FUZZ_REPRODUCER_FILE`` is set, appends the spec there for the CI
artifact upload).

Budget: ``FUZZ_BUDGET`` env var, default 25 (the `make fuzz` default —
seconds of wall clock); the nightly workflow raises it to explore deeper.
"""

from __future__ import annotations

import os

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402

from repro.validation import check_case, degree_skewed_cases, fuzz_cases  # noqa: E402

FUZZ_BUDGET = int(os.environ.get("FUZZ_BUDGET", "25"))

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@settings(max_examples=FUZZ_BUDGET, **_SETTINGS)
@given(fuzz_cases())
def test_engines_agree_on_sampled_configurations(case):
    """legacy == vector == batch on every sampled configuration."""
    check_case(case)


@settings(max_examples=max(FUZZ_BUDGET // 5, 5), **_SETTINGS)
@given(degree_skewed_cases())
def test_engines_agree_under_degree_skewed_hotspots(case):
    """The scale-free hotspot regime (arxiv 0908.0976) diverges nowhere."""
    check_case(case)
