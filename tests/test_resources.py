"""Tests of the cycle engine: flits, register stages, arbitration points."""

import pytest

from repro.interconnect.resources import (
    LEVEL_BANK,
    LEVEL_MASTER_REQ,
    LEVEL_MASTER_RESP,
    ArbitrationPoint,
    Flit,
    RegisterStage,
    StageNetwork,
)


def make_network_with_chain(depths=(2, 2, 2)):
    """A simple three-stage chain: request port -> bank -> response port."""
    network = StageNetwork()
    request = network.add_stage(RegisterStage("req", LEVEL_MASTER_REQ, depth=depths[0]))
    bank = network.add_stage(RegisterStage("bank", LEVEL_BANK, depth=depths[1]))
    response = network.add_stage(RegisterStage("resp", LEVEL_MASTER_RESP, depth=depths[2]))
    return network, [request, bank, response]


def make_flit(path, flit_id=0, cycle=0):
    return Flit(flit_id=flit_id, core_id=0, bank_id=0, path=path, created_cycle=cycle)


class TestRegisterStage:
    def test_accepts_at_most_one_flit_per_cycle(self):
        stage = RegisterStage("s", LEVEL_BANK, depth=4)
        stage.accept(make_flit([]), cycle=0)
        assert not stage.can_accept(0)
        assert stage.can_accept(1)

    def test_respects_depth(self):
        stage = RegisterStage("s", LEVEL_BANK, depth=1)
        stage.accept(make_flit([]), cycle=0)
        assert not stage.can_accept(1)

    def test_release_head_is_fifo(self):
        stage = RegisterStage("s", LEVEL_BANK, depth=2)
        first, second = make_flit([], 1), make_flit([], 2)
        stage.accept(first, 0)
        stage.accept(second, 1)
        assert stage.release_head() is first
        assert stage.release_head() is second

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            RegisterStage("s", LEVEL_BANK, depth=0)


class TestArbitrationPoint:
    def test_single_grant_per_cycle(self):
        point = ArbitrationPoint("a")
        assert point.available(0)
        point.grant(0)
        assert not point.available(0)
        assert point.available(1)

    def test_grant_counter(self):
        point = ArbitrationPoint("a")
        point.grant(0)
        point.grant(1)
        assert point.grants == 2


class TestFlit:
    def test_latency_requires_completion(self):
        flit = make_flit([], cycle=3)
        with pytest.raises(ValueError):
            _ = flit.latency
        flit.completed_cycle = 8
        assert flit.latency == 5

    def test_read_write_flags(self):
        read = Flit(0, 0, 0, path=[], is_write=False)
        write = Flit(1, 0, 0, path=[], is_write=True)
        assert read.is_read and not write.is_read


class TestStageNetworkMovement:
    def test_zero_load_latency_equals_number_of_registers(self):
        network, stages = make_network_with_chain()
        flit = make_flit(stages, cycle=0)
        assert network.try_inject(flit, 0)
        completed = []
        cycle = 1
        while not completed:
            completed = network.advance(cycle)
            cycle += 1
        assert completed[0] is flit
        assert flit.latency == 3

    def test_pipeline_sustains_one_flit_per_cycle(self):
        network, stages = make_network_with_chain()
        completed = 0
        injected = 0
        for cycle in range(100):
            completed += len(network.advance(cycle))
            flit = make_flit(stages, flit_id=cycle, cycle=cycle)
            if network.try_inject(flit, cycle):
                injected += 1
        assert injected >= 97
        assert completed >= injected - 4

    def test_injection_fails_when_first_stage_is_full(self):
        network, stages = make_network_with_chain(depths=(1, 1, 1))
        assert network.try_inject(make_flit(stages, 0, 0), 0)
        assert not network.try_inject(make_flit(stages, 1, 0), 0)

    def test_backpressure_propagates_upstream(self):
        """If the last stage never drains, everything upstream fills up."""
        network, stages = make_network_with_chain(depths=(2, 2, 2))
        blocker = ArbitrationPoint("blocker")
        path = stages + [blocker]
        injected = 0
        for cycle in range(20):
            blocker.grant(cycle)  # steal the grant so no flit ever completes
            network.advance(cycle)
            if network.try_inject(make_flit(path, cycle, cycle), cycle):
                injected += 1
        # Total buffering is 3 stages x depth 2 = 6 flits.
        assert injected == 6
        assert network.in_flight == 6

    def test_arbitration_point_admits_one_of_two_contenders(self):
        network = StageNetwork()
        shared = ArbitrationPoint("shared")
        network.add_arbiter(shared)
        bank_a = network.add_stage(RegisterStage("bank_a", LEVEL_BANK))
        bank_b = network.add_stage(RegisterStage("bank_b", LEVEL_BANK))
        first = make_flit([shared, bank_a], 0, 0)
        second = make_flit([shared, bank_b], 1, 0)
        assert network.try_inject(first, 0)
        assert not network.try_inject(second, 0)
        assert network.try_inject(second, 1)

    def test_completion_counters(self):
        network, stages = make_network_with_chain()
        flit = make_flit(stages, 0, 0)
        network.try_inject(flit, 0)
        for cycle in range(1, 10):
            network.advance(cycle)
        assert network.total_injected == 1
        assert network.total_completed == 1
        assert network.in_flight == 0

    def test_store_path_completes_at_the_bank(self):
        """A write flit whose path ends at the bank completes there."""
        network = StageNetwork()
        bank = network.add_stage(RegisterStage("bank", LEVEL_BANK))
        flit = Flit(0, 0, 0, path=[bank], is_write=True, created_cycle=0)
        network.try_inject(flit, 0)
        completed = network.advance(1)
        assert completed == [flit]
        assert flit.latency == 1

    def test_drain_empties_the_network(self):
        network, stages = make_network_with_chain()
        for index in range(3):
            network.try_inject(make_flit(stages, index, 0), 0)
        final_cycle = network.drain(max_cycles=50, start_cycle=1)
        assert network.in_flight == 0
        assert final_cycle <= 20

    def test_drain_raises_when_blocked(self):
        network = StageNetwork()
        bank = network.add_stage(RegisterStage("bank", LEVEL_BANK))
        blocker = ArbitrationPoint("blocker")
        flit = Flit(0, 0, 0, path=[bank, blocker, RegisterStage("never", LEVEL_MASTER_RESP)])
        # The final stage is not registered with the network on purpose; the
        # blocker's grant is stolen every cycle below.
        network.try_inject(flit, 0)
        with pytest.raises(RuntimeError):
            original_advance = network.advance

            def advance_and_block(cycle):
                blocker.grant(cycle)
                return original_advance(cycle)

            network.advance = advance_and_block  # type: ignore[method-assign]
            network.drain(max_cycles=10, start_cycle=1)

    def test_double_injection_rejected(self):
        network, stages = make_network_with_chain()
        flit = make_flit(stages, 0, 0)
        network.try_inject(flit, 0)
        with pytest.raises(ValueError):
            network.try_inject(flit, 1)

    def test_custom_levels_slot_into_descending_order(self):
        # Arbitrary integer levels are valid (the parameterized topology
        # families use per-hop levels outside the paper's five); they must
        # appear in the processing order at their descending position.
        network = StageNetwork()
        network.add_stage(RegisterStage("hop", level=42))
        network.add_stage(RegisterStage("early", level=-3))
        network.add_stage(RegisterStage("bank", level=LEVEL_BANK))
        assert network.active_levels == (42, LEVEL_BANK, -3)
        assert network.stages_at_level(42)[0].name == "hop"

    def test_occupancy_reports_buffered_flits(self):
        network, stages = make_network_with_chain()
        network.try_inject(make_flit(stages, 0, 0), 0)
        network.try_inject(make_flit(stages, 1, 0), 0)
        assert network.occupancy() == 1  # only one can enter per cycle
