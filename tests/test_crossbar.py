"""Tests of the single-stage crossbar switch building block (Section III-A)."""

import pytest

from repro.interconnect.crossbar import CrossbarSwitch
from repro.interconnect.resources import ArbitrationPoint, RegisterStage


class TestConstruction:
    def test_combinational_outputs_are_arbitration_points(self):
        switch = CrossbarSwitch("xbar", 4, 4)
        assert switch.num_outputs == 4
        assert all(isinstance(output, ArbitrationPoint) for output in switch.outputs)

    def test_registered_outputs_are_register_stages(self):
        switch = CrossbarSwitch("xbar", 4, 4, registered_outputs=True, level=2)
        assert all(isinstance(output, RegisterStage) for output in switch.outputs)
        assert all(output.level == 2 for output in switch.outputs)

    def test_output_names_include_the_switch_name(self):
        switch = CrossbarSwitch("group0.req", 16, 16)
        assert switch.output(3).name == "group0.req.out3"

    def test_rectangular_switch(self):
        switch = CrossbarSwitch("concentrator", 4, 1)
        assert switch.num_inputs == 4
        assert switch.num_outputs == 1
        assert switch.crosspoints == 4

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            CrossbarSwitch("bad", 0, 4)

    def test_output_index_bounds(self):
        switch = CrossbarSwitch("xbar", 2, 2)
        with pytest.raises(ValueError):
            switch.output(2)

    def test_wire_bits(self):
        switch = CrossbarSwitch("xbar", 4, 4, data_width_bits=32)
        assert switch.wire_bits == 8 * 32


class TestUtilisation:
    def test_utilisation_counts_grants(self):
        switch = CrossbarSwitch("xbar", 2, 2)
        output = switch.output(0)
        output.grant(0)
        output.grant(1)
        assert switch.utilisation(cycles=4) == pytest.approx(2 / 8)

    def test_utilisation_counts_register_accepts(self):
        switch = CrossbarSwitch("xbar", 2, 2, registered_outputs=True, level=1)
        output = switch.output(1)
        output.accept(object(), 0)
        assert switch.utilisation(cycles=2) == pytest.approx(1 / 4)

    def test_utilisation_requires_positive_cycles(self):
        with pytest.raises(ValueError):
            CrossbarSwitch("xbar", 2, 2).utilisation(0)
