"""Tests of the shared utility helpers (stats, tables, validation, rotation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.rotation import PermutationSchedule
from repro.utils.stats import Histogram, OnlineStats, geometric_mean, summarize
from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    is_power_of,
    log2_int,
    log_base_int,
)


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.stddev == 0.0

    def test_single_sample(self):
        stats = OnlineStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0

    def test_mean_and_variance(self):
        stats = OnlineStats()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.add(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.0)

    def test_merge_matches_sequential(self):
        left, right, combined = OnlineStats(), OnlineStats(), OnlineStats()
        for value in range(10):
            left.add(float(value))
            combined.add(float(value))
        for value in range(10, 30):
            right.add(float(value))
            combined.add(float(value))
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)

    def test_merge_with_empty(self):
        stats = OnlineStats()
        stats.add(1.0)
        stats.merge(OnlineStats())
        assert stats.count == 1

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_matches_direct_computation(self, values):
        stats = OnlineStats()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-6)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)


class TestHistogram:
    def test_mean(self):
        histogram = Histogram()
        histogram.add(1, weight=3)
        histogram.add(5)
        assert histogram.total == 4
        assert histogram.mean() == pytest.approx(2.0)

    def test_percentile(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.add(value)
        assert histogram.percentile(0.5) == 50
        assert histogram.percentile(0.95) == 95
        assert histogram.percentile(1.0) == 100

    def test_percentile_of_empty_is_zero(self):
        assert Histogram().percentile(0.9) == 0

    def test_percentile_validates_fraction(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_items_sorted(self):
        histogram = Histogram()
        histogram.add(5)
        histogram.add(2)
        assert [value for value, _ in histogram.items()] == [2, 5]


class TestSummaries:
    def test_summarize(self):
        summary = summarize([1, 2, 3, 4])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1
        assert summary["max"] == 4

    def test_geometric_mean(self):
        assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in text
        assert "2.250" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_format_series(self):
        text = format_series("load", [0.1, 0.2], {"top1": [1.0, 2.0], "toph": [3.0, 4.0]})
        assert "top1" in text and "toph" in text
        assert "0.100" in text


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_power_of_two(self):
        check_power_of_two("x", 8)
        with pytest.raises(ValueError):
            check_power_of_two("x", 12)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("x", 1.5, 0.0, 1.0)

    def test_log2_int(self):
        assert log2_int(1024) == 10
        with pytest.raises(ValueError):
            log2_int(3)

    def test_is_power_of(self):
        assert is_power_of(64, 4)
        assert is_power_of(1, 4)
        assert not is_power_of(32, 4)
        assert not is_power_of(0, 4)

    def test_log_base_int(self):
        assert log_base_int(64, 4) == 3
        with pytest.raises(ValueError):
            log_base_int(48, 4)


class TestPermutationSchedule:
    def test_orders_are_permutations(self):
        schedule = PermutationSchedule(10, seed=3)
        for cycle in range(20):
            assert sorted(schedule.order(cycle)) == list(range(10))

    def test_deterministic_for_a_seed(self):
        first = PermutationSchedule(16, seed=7)
        second = PermutationSchedule(16, seed=7)
        assert first.order(5) == second.order(5)

    def test_different_cycles_usually_differ(self):
        schedule = PermutationSchedule(16, seed=0)
        assert schedule.order(0) != schedule.order(1)

    def test_pairwise_fairness(self):
        """Element 0 should precede element 1 roughly half of the time."""
        schedule = PermutationSchedule(8, seed=1, pool_size=97)
        wins = 0
        for cycle in range(97):
            order = schedule.order(cycle)
            wins += order.index(0) < order.index(1)
        assert 0.3 < wins / 97 < 0.7

    def test_empty_schedule(self):
        assert PermutationSchedule(0).order(3) == ()

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            PermutationSchedule(4, pool_size=0)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PermutationSchedule(-1)
