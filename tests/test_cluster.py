"""Tests of the MemPoolCluster container (tiles, flit construction, locality)."""

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.interconnect.resources import RegisterStage


class TestTiles:
    def test_tile_count_and_contents(self, tiny_cluster):
        config = tiny_cluster.config
        assert len(tiny_cluster.tiles) == config.num_tiles
        for tile in tiny_cluster.tiles:
            assert tile.num_cores == config.cores_per_tile
            assert tile.num_banks == config.banks_per_tile

    def test_tile_core_ids_are_global_and_contiguous(self, tiny_cluster):
        seen = []
        for tile in tiny_cluster.tiles:
            seen.extend(tile.core_ids)
        assert seen == list(range(tiny_cluster.config.num_cores))

    def test_tile_groups(self):
        cluster = MemPoolCluster(MemPoolConfig.scaled("toph"))
        assert cluster.tiles[0].group == 0
        assert cluster.tiles[15].group == 3

    def test_tile_of_core(self, tiny_cluster):
        assert tiny_cluster.tile_of_core(5).tile_id == tiny_cluster.config.tile_of_core(5)


class TestFlitConstruction:
    def test_make_flit_decodes_the_address(self, toph_tiny_cluster):
        cluster = toph_tiny_cluster
        address = cluster.layout.stack_pointer(0) - 4
        flit = cluster.make_flit(0, address, is_write=False, cycle=0)
        assert cluster.config.tile_of_bank(flit.bank_id) == 0

    def test_make_bank_flit_paths_end_properly(self, tiny_cluster):
        read = tiny_cluster.make_bank_flit(0, 1, is_write=False, cycle=0)
        write = tiny_cluster.make_bank_flit(0, 1, is_write=True, cycle=0)
        assert len(read.path) >= len(write.path)
        assert isinstance(write.path[-1], RegisterStage)

    def test_flit_ids_are_unique(self, tiny_cluster):
        ids = {tiny_cluster.make_bank_flit(0, 0, False, 0).flit_id for _ in range(10)}
        assert len(ids) == 10

    def test_scrambling_changes_where_stacks_land(self):
        scrambled = MemPoolCluster(MemPoolConfig.tiny("toph"))
        interleaved = MemPoolCluster(MemPoolConfig.tiny("toph", scrambling_enabled=False))
        core = 5
        address = scrambled.layout.stack_pointer(core) - 4
        assert scrambled.is_local_access(core, address)
        assert not interleaved.is_local_access(core, address)

    def test_is_local_bank(self, tiny_cluster):
        config = tiny_cluster.config
        assert tiny_cluster.is_local_bank(0, 0)
        assert not tiny_cluster.is_local_bank(0, config.banks_per_tile)


class TestDescriptions:
    def test_describe_mentions_topology(self, tiny_cluster):
        text = tiny_cluster.describe()
        assert tiny_cluster.config.topology in text

    def test_zero_load_latency_forwards_to_topology(self, tiny_cluster):
        assert tiny_cluster.zero_load_latency(0, 0) == 1
