"""Tests of the `python -m repro.evaluation` command-line entry point."""

from repro.evaluation import __main__ as evaluation_main


class _FakeResult:
    def report(self) -> str:
        return "fake report"


class _FakeDefinition:
    """Stands in for an ExperimentDefinition; records the run calls."""

    def __init__(self, calls, name="fake"):
        self.calls = calls
        self.name = name

    def run(self, settings, executor):
        self.calls.append((self.name, settings, executor))
        return _FakeResult()


def test_unknown_experiment_is_rejected(capsys):
    exit_code = evaluation_main.main(["does-not-exist"])
    assert exit_code == 1
    assert "unknown experiments" in capsys.readouterr().out


def test_selected_experiments_run_and_print(monkeypatch, capsys):
    calls = []
    monkeypatch.setitem(
        evaluation_main.EXPERIMENTS, "fig10", _FakeDefinition(calls, "fig10")
    )
    exit_code = evaluation_main.main(["fig10"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert calls, "the selected experiment driver was not invoked"
    assert "fake report" in output
    assert "fig10" in output


def test_default_selection_includes_every_experiment(monkeypatch, capsys):
    calls = []
    for name in list(evaluation_main.EXPERIMENTS):
        monkeypatch.setitem(
            evaluation_main.EXPERIMENTS, name, _FakeDefinition(calls, name)
        )
    exit_code = evaluation_main.main([])
    assert exit_code == 0
    assert {name for name, _, _ in calls} == set(evaluation_main.EXPERIMENTS)
    assert "experiment scale" in capsys.readouterr().out


def test_workers_flag_configures_the_executor(monkeypatch, capsys):
    calls = []
    monkeypatch.setitem(
        evaluation_main.EXPERIMENTS, "fig10", _FakeDefinition(calls, "fig10")
    )
    exit_code = evaluation_main.main(["--workers", "3", "fig10"])
    assert exit_code == 0
    _, _, executor = calls[0]
    assert executor.workers == 3
    assert executor.cache is None  # uncached unless --cache is passed
    capsys.readouterr()


def test_cache_flag_attaches_a_result_cache(monkeypatch, capsys, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    calls = []
    monkeypatch.setitem(
        evaluation_main.EXPERIMENTS, "fig10", _FakeDefinition(calls, "fig10")
    )
    exit_code = evaluation_main.main(["--cache", "fig10"])
    assert exit_code == 0
    _, _, executor = calls[0]
    assert executor.cache is not None
    assert executor.cache.root == tmp_path
    capsys.readouterr()


def test_engine_flag_reaches_the_settings(monkeypatch, capsys):
    calls = []
    monkeypatch.setitem(
        evaluation_main.EXPERIMENTS, "fig10", _FakeDefinition(calls, "fig10")
    )
    exit_code = evaluation_main.main(["--engine", "vector", "fig10"])
    assert exit_code == 0
    _, settings, _ = calls[0]
    assert settings.engine == "vector"
    capsys.readouterr()


def test_engine_defaults_to_environment(monkeypatch, capsys):
    monkeypatch.setenv("MEMPOOL_ENGINE", "vector")
    calls = []
    monkeypatch.setitem(
        evaluation_main.EXPERIMENTS, "fig10", _FakeDefinition(calls, "fig10")
    )
    exit_code = evaluation_main.main(["fig10"])
    assert exit_code == 0
    _, settings, _ = calls[0]
    assert settings.engine == "vector"
    capsys.readouterr()


def test_bogus_engine_environment_fails_fast(monkeypatch):
    import pytest

    from repro.evaluation.settings import ExperimentSettings

    monkeypatch.setenv("MEMPOOL_ENGINE", "Vector")
    with pytest.raises(ValueError, match="unknown engine"):
        ExperimentSettings()
