"""Tests of the `python -m repro.evaluation` command-line entry point."""

from repro.evaluation import __main__ as evaluation_main


class _FakeResult:
    def report(self) -> str:
        return "fake report"


def test_unknown_experiment_is_rejected(capsys):
    exit_code = evaluation_main.main(["does-not-exist"])
    assert exit_code == 1
    assert "unknown experiments" in capsys.readouterr().out


def test_selected_experiments_run_and_print(monkeypatch, capsys):
    calls = []

    def fake_driver(settings):
        calls.append(settings)
        return _FakeResult()

    monkeypatch.setitem(evaluation_main.EXPERIMENTS, "fig10", fake_driver)
    exit_code = evaluation_main.main(["fig10"])
    output = capsys.readouterr().out
    assert exit_code == 0
    assert calls, "the selected experiment driver was not invoked"
    assert "fake report" in output
    assert "fig10" in output


def test_default_selection_includes_every_experiment(monkeypatch, capsys):
    invoked = []

    def make_fake(name):
        def fake_driver(settings):
            invoked.append(name)
            return _FakeResult()

        return fake_driver

    for name in list(evaluation_main.EXPERIMENTS):
        monkeypatch.setitem(evaluation_main.EXPERIMENTS, name, make_fake(name))
    exit_code = evaluation_main.main([])
    assert exit_code == 0
    assert set(invoked) == set(evaluation_main.EXPERIMENTS)
    assert "experiment scale" in capsys.readouterr().out
