"""Equivalence of the SoA engines with the legacy object engine.

The contract of :mod:`repro.engine` is *cycle-exactness*: for fixed seeds,
the structure-of-arrays engines — ``vector`` (deque + move-chain) and
``compiled`` (ring-buffer + typed-array kernels, JIT-built when numba is
installed) — must produce flit-for-flit identical injection and completion
cycles, and therefore identical throughput and latency figures, on every
topology.  These tests drive the engines through the same workloads and
compare the complete per-flit logs against the legacy engine.
"""

from __future__ import annotations

import os

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.kernels.dct import DctKernel
from repro.traffic.generator import TrafficPattern
from repro.traffic.simulation import TrafficSimulation
from repro.workloads import available_injectors, available_patterns
from repro.workloads.registry import injector_entry, pattern_entry

# Entries with required parameters (trace replay needs a recorded file)
# have no default construction; their equivalence is pinned by
# tests/test_trace.py over real recordings instead.
DEFAULT_PATTERNS = tuple(
    name for name in available_patterns() if not pattern_entry(name).required
)
DEFAULT_INJECTORS = tuple(
    name for name in available_injectors() if not injector_entry(name).required
)

COMPARED_FIELDS = (
    "topology",
    "injected_load",
    "measured_cycles",
    "num_cores",
    "generated_requests",
    "injected_requests",
    "completed_requests",
    "average_latency",
    "p95_latency",
    "max_latency",
    "local_fraction",
)


class FixedPermutationPattern(TrafficPattern):
    """Every core always targets one fixed bank (a random permutation).

    Unlike uniform traffic this creates *persistent* contention pairs —
    the same cores collide at the same arbiters every cycle — which is the
    adversarial case for arbitration-order equivalence between engines.
    """

    def __init__(self, config: MemPoolConfig, seed: int = 0) -> None:
        super().__init__(config, seed)
        banks = list(range(config.num_banks))
        self.rng.shuffle(banks)
        self._destination_of = [
            banks[core % config.num_banks] for core in range(config.num_cores)
        ]

    def destination(self, core_id: int) -> int:
        """The fixed destination bank of ``core_id``."""
        return self._destination_of[core_id]


def _run(config: MemPoolConfig, engine: str, pattern_name: str, load: float):
    cluster = MemPoolCluster(config, engine=engine)
    pattern = (
        FixedPermutationPattern(config, seed=7)
        if pattern_name == "permutation"
        else None  # TrafficSimulation defaults to uniform random
    )
    simulation = TrafficSimulation(cluster, load, pattern=pattern, seed=11)
    return simulation.run(warmup_cycles=100, measure_cycles=250, record_flits=True)


@pytest.mark.parametrize("cores", [16, 64])
@pytest.mark.parametrize("pattern_name", ["uniform", "permutation"])
@pytest.mark.parametrize("topology", ["top1", "toph"])
def test_traffic_equivalence(cores, pattern_name, topology):
    """Identical per-flit lifecycles on {16, 64}-core clusters."""
    config = (
        MemPoolConfig.tiny(topology) if cores == 16 else MemPoolConfig.scaled(topology)
    )
    assert config.num_cores == cores
    legacy = _run(config, "legacy", pattern_name, load=0.3)
    assert legacy.flit_log  # the comparison must not be vacuous
    for engine in ("vector", "compiled"):
        other = _run(config, engine, pattern_name, load=0.3)
        assert legacy.flit_log == other.flit_log, engine
        for field in COMPARED_FIELDS:
            assert getattr(legacy, field) == getattr(other, field), (engine, field)


@pytest.mark.parametrize("pattern", DEFAULT_PATTERNS)
@pytest.mark.parametrize("injector", DEFAULT_INJECTORS)
def test_workload_equivalence_every_pattern_and_injector(pattern, injector):
    """Every registered pattern x injector pair is cycle-exact across engines.

    This is the contract that makes the workload registry safe to extend:
    a component whose batched API drifts from its scalar draw order — or
    whose RNG substreams alias between cores — shows up here as a flit-log
    mismatch before it can corrupt a figure.
    """
    config = MemPoolConfig.tiny("toph")
    logs = {}
    for engine in ("legacy", "vector", "compiled"):
        cluster = MemPoolCluster(config, engine=engine)
        simulation = TrafficSimulation(
            cluster, 0.3, pattern=pattern, seed=13, injector=injector
        )
        result = simulation.run(
            warmup_cycles=60, measure_cycles=200, record_flits=True
        )
        logs[engine] = (result.flit_log, result.local_fraction)
    assert logs["legacy"][0]  # the comparison must not be vacuous
    assert logs["legacy"] == logs["vector"]
    assert logs["legacy"] == logs["compiled"]


@pytest.mark.parametrize("topology", ["top1", "top4", "toph", "topx"])
def test_traffic_equivalence_every_topology_smoke(topology):
    """Short smoke run covering all four topologies, high load."""
    config = MemPoolConfig.tiny(topology)
    legacy = _run(config, "legacy", "uniform", load=0.6)
    for engine in ("vector", "compiled"):
        assert legacy.flit_log == _run(config, engine, "uniform", load=0.6).flit_log


@pytest.mark.parametrize("topology", ["top1", "toph"])
def test_system_equivalence_on_kernel(topology):
    """The execution-driven simulator is cycle-exact across engines too."""
    results = {}
    for engine in ("legacy", "vector", "compiled"):
        cluster = MemPoolCluster(MemPoolConfig.tiny(topology), engine=engine)
        results[engine] = DctKernel(cluster, blocks_per_core=1, seed=0).run(verify=True)
    legacy = results["legacy"]
    for engine in ("vector", "compiled"):
        other = results[engine]
        assert other.correct
        assert legacy.system.cycles == other.system.cycles, engine
        assert legacy.system.instructions == other.system.instructions, engine
        assert legacy.system.injected_requests == other.system.injected_requests
        assert legacy.system.completed_requests == other.system.completed_requests
        legacy_stats = [stats.__dict__ for stats in legacy.system.core_stats]
        other_stats = [stats.__dict__ for stats in other.system.core_stats]
        assert legacy_stats == other_stats, engine


def test_back_to_back_runs_stay_equivalent():
    """A second measurement window sees the same backlog on both engines.

    Regression test: the vector fast path must reuse the simulation's
    persistent source queues, like the legacy loop does, so that a
    saturated first window hands the same queued backlog to the second.
    """
    config = MemPoolConfig.tiny("top1")
    results = {}
    for engine in ("legacy", "vector", "compiled"):
        cluster = MemPoolCluster(config, engine=engine)
        simulation = TrafficSimulation(cluster, 0.6, seed=5)
        first = simulation.run(50, 150, record_flits=True)
        second = simulation.run(50, 150, record_flits=True)
        results[engine] = (first.flit_log, second.flit_log, second.local_fraction)
    assert results["legacy"] == results["vector"]
    assert results["legacy"] == results["compiled"]


@pytest.mark.skipif(
    not os.environ.get("MEMPOOL_NIGHTLY"),
    reason="paper-scale smoke equivalence runs in the nightly job "
    "(set MEMPOOL_NIGHTLY=1 to run locally)",
)
def test_full_scale_256_core_equivalence_smoke():
    """256-core paper-scale cluster: all three per-sim engines agree.

    A short window (the per-cycle work at 256 cores is what matters, not
    the horizon) over the full configuration the compiled engine exists to
    make routine; one topology keeps the nightly cost bounded.
    """
    config = MemPoolConfig.full("toph")
    assert config.num_cores == 256
    legacy = _run(config, "legacy", "uniform", load=0.2)
    assert legacy.flit_log  # the comparison must not be vacuous
    for engine in ("vector", "compiled"):
        other = _run(config, engine, "uniform", load=0.2)
        assert legacy.flit_log == other.flit_log, engine
        for field in COMPARED_FIELDS:
            assert getattr(legacy, field) == getattr(other, field), (engine, field)


def test_point_function_equivalence_via_engine_flag():
    """The ``engine`` parameter of the fig5 point function is behaviour-neutral."""
    from repro.evaluation.fig5 import simulate_fig5_point

    legacy = simulate_fig5_point(
        topology="toph", load=0.2, warmup_cycles=50, measure_cycles=150,
        engine="legacy",
    )
    vector = simulate_fig5_point(
        topology="toph", load=0.2, warmup_cycles=50, measure_cycles=150,
        engine="vector",
    )
    for field in COMPARED_FIELDS:
        assert getattr(legacy, field) == getattr(vector, field), field
