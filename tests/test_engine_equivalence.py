"""Equivalence of the vectorized engine with the legacy object engine.

The contract of :mod:`repro.engine` is *cycle-exactness*: for fixed seeds,
the structure-of-arrays engine must produce flit-for-flit identical
injection and completion cycles — and therefore identical throughput and
latency figures — on every topology.  These tests drive both engines
through the same workloads and compare the complete per-flit logs.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.kernels.dct import DctKernel
from repro.traffic.generator import TrafficPattern
from repro.traffic.simulation import TrafficSimulation
from repro.workloads import available_injectors, available_patterns

COMPARED_FIELDS = (
    "topology",
    "injected_load",
    "measured_cycles",
    "num_cores",
    "generated_requests",
    "injected_requests",
    "completed_requests",
    "average_latency",
    "p95_latency",
    "max_latency",
    "local_fraction",
)


class FixedPermutationPattern(TrafficPattern):
    """Every core always targets one fixed bank (a random permutation).

    Unlike uniform traffic this creates *persistent* contention pairs —
    the same cores collide at the same arbiters every cycle — which is the
    adversarial case for arbitration-order equivalence between engines.
    """

    def __init__(self, config: MemPoolConfig, seed: int = 0) -> None:
        super().__init__(config, seed)
        banks = list(range(config.num_banks))
        self.rng.shuffle(banks)
        self._destination_of = [
            banks[core % config.num_banks] for core in range(config.num_cores)
        ]

    def destination(self, core_id: int) -> int:
        """The fixed destination bank of ``core_id``."""
        return self._destination_of[core_id]


def _run(config: MemPoolConfig, engine: str, pattern_name: str, load: float):
    cluster = MemPoolCluster(config, engine=engine)
    pattern = (
        FixedPermutationPattern(config, seed=7)
        if pattern_name == "permutation"
        else None  # TrafficSimulation defaults to uniform random
    )
    simulation = TrafficSimulation(cluster, load, pattern=pattern, seed=11)
    return simulation.run(warmup_cycles=100, measure_cycles=250, record_flits=True)


@pytest.mark.parametrize("cores", [16, 64])
@pytest.mark.parametrize("pattern_name", ["uniform", "permutation"])
@pytest.mark.parametrize("topology", ["top1", "toph"])
def test_traffic_equivalence(cores, pattern_name, topology):
    """Identical per-flit lifecycles on {16, 64}-core clusters."""
    config = (
        MemPoolConfig.tiny(topology) if cores == 16 else MemPoolConfig.scaled(topology)
    )
    assert config.num_cores == cores
    legacy = _run(config, "legacy", pattern_name, load=0.3)
    vector = _run(config, "vector", pattern_name, load=0.3)
    assert legacy.flit_log  # the comparison must not be vacuous
    assert legacy.flit_log == vector.flit_log
    for field in COMPARED_FIELDS:
        assert getattr(legacy, field) == getattr(vector, field), field


@pytest.mark.parametrize("pattern", available_patterns())
@pytest.mark.parametrize("injector", available_injectors())
def test_workload_equivalence_every_pattern_and_injector(pattern, injector):
    """Every registered pattern x injector pair is cycle-exact across engines.

    This is the contract that makes the workload registry safe to extend:
    a component whose batched API drifts from its scalar draw order — or
    whose RNG substreams alias between cores — shows up here as a flit-log
    mismatch before it can corrupt a figure.
    """
    config = MemPoolConfig.tiny("toph")
    logs = {}
    for engine in ("legacy", "vector"):
        cluster = MemPoolCluster(config, engine=engine)
        simulation = TrafficSimulation(
            cluster, 0.3, pattern=pattern, seed=13, injector=injector
        )
        result = simulation.run(
            warmup_cycles=60, measure_cycles=200, record_flits=True
        )
        logs[engine] = (result.flit_log, result.local_fraction)
    assert logs["legacy"][0]  # the comparison must not be vacuous
    assert logs["legacy"] == logs["vector"]


@pytest.mark.parametrize("topology", ["top1", "top4", "toph", "topx"])
def test_traffic_equivalence_every_topology_smoke(topology):
    """Short smoke run covering all four topologies, high load."""
    config = MemPoolConfig.tiny(topology)
    legacy = _run(config, "legacy", "uniform", load=0.6)
    vector = _run(config, "vector", "uniform", load=0.6)
    assert legacy.flit_log == vector.flit_log


@pytest.mark.parametrize("topology", ["top1", "toph"])
def test_system_equivalence_on_kernel(topology):
    """The execution-driven simulator is cycle-exact across engines too."""
    results = {}
    for engine in ("legacy", "vector"):
        cluster = MemPoolCluster(MemPoolConfig.tiny(topology), engine=engine)
        results[engine] = DctKernel(cluster, blocks_per_core=1, seed=0).run(verify=True)
    legacy, vector = results["legacy"], results["vector"]
    assert vector.correct
    assert legacy.system.cycles == vector.system.cycles
    assert legacy.system.instructions == vector.system.instructions
    assert legacy.system.injected_requests == vector.system.injected_requests
    assert legacy.system.completed_requests == vector.system.completed_requests
    legacy_stats = [stats.__dict__ for stats in legacy.system.core_stats]
    vector_stats = [stats.__dict__ for stats in vector.system.core_stats]
    assert legacy_stats == vector_stats


def test_back_to_back_runs_stay_equivalent():
    """A second measurement window sees the same backlog on both engines.

    Regression test: the vector fast path must reuse the simulation's
    persistent source queues, like the legacy loop does, so that a
    saturated first window hands the same queued backlog to the second.
    """
    config = MemPoolConfig.tiny("top1")
    results = {}
    for engine in ("legacy", "vector"):
        cluster = MemPoolCluster(config, engine=engine)
        simulation = TrafficSimulation(cluster, 0.6, seed=5)
        first = simulation.run(50, 150, record_flits=True)
        second = simulation.run(50, 150, record_flits=True)
        results[engine] = (first.flit_log, second.flit_log, second.local_fraction)
    assert results["legacy"] == results["vector"]


def test_point_function_equivalence_via_engine_flag():
    """The ``engine`` parameter of the fig5 point function is behaviour-neutral."""
    from repro.evaluation.fig5 import simulate_fig5_point

    legacy = simulate_fig5_point(
        topology="toph", load=0.2, warmup_cycles=50, measure_cycles=150,
        engine="legacy",
    )
    vector = simulate_fig5_point(
        topology="toph", load=0.2, warmup_cycles=50, measure_cycles=150,
        engine="vector",
    )
    for field in COMPARED_FIELDS:
        assert getattr(legacy, field) == getattr(vector, field), field
