"""Golden equivalence of the SimBatch engine with per-sim engine runs.

The contract of :mod:`repro.engine.batch` is the same cycle-exactness the
vector engine pinned against the legacy engine, lifted to the sim axis:
for fixed seeds, a batch of S simulations must produce flit-for-flit
identical injection and completion cycles — and therefore identical
throughput and latency figures — to S sequential per-sim runs, for every
topology, every workload pair and every mix of member parameters.
"""

from __future__ import annotations

import pytest

from repro.core.cluster import ENGINES, MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.engine.batch import SimBatch, TrafficBatch
from repro.traffic.simulation import TrafficSimulation

COMPARED_FIELDS = (
    "topology",
    "injected_load",
    "measured_cycles",
    "num_cores",
    "generated_requests",
    "injected_requests",
    "completed_requests",
    "average_latency",
    "p95_latency",
    "max_latency",
    "local_fraction",
)

#: (pattern, injector) pairs of the golden grid — a stochastic legacy
#: pair, a deterministic-permutation pair and a substream-drawing pair,
#: so shared-stream, table-gather and per-core-RNG code paths all appear.
WORKLOAD_PAIRS = (
    ("uniform", "poisson"),
    ("tornado", "bernoulli"),
    ("hotspot", "bursty"),
)


def _vector_run(config, load, pattern, injector, seed, windows=(100, 250)):
    cluster = MemPoolCluster(config, engine="vector")
    simulation = TrafficSimulation(
        cluster, load, pattern=pattern, seed=seed, injector=injector
    )
    return simulation.run(*windows, record_flits=True)


def _assert_equal(vector_result, batch_result, context):
    assert vector_result.flit_log, context  # the comparison must not be vacuous
    assert vector_result.flit_log == batch_result.flit_log, context
    for field in COMPARED_FIELDS:
        assert getattr(vector_result, field) == getattr(batch_result, field), (
            context,
            field,
        )


@pytest.mark.parametrize("cores", [16, 64])
@pytest.mark.parametrize("pattern,injector", WORKLOAD_PAIRS)
def test_batch_flit_logs_bit_identical_to_vector(cores, pattern, injector):
    """A load-sweep batch matches per-sim vector runs flit for flit."""
    config = (
        MemPoolConfig.tiny("toph") if cores == 16 else MemPoolConfig.scaled("toph")
    )
    assert config.num_cores == cores
    loads = (0.1, 0.3, 0.5)
    vector_results = [
        _vector_run(config, load, pattern, injector, seed=11) for load in loads
    ]
    cluster = MemPoolCluster(config, engine="batch")
    simulations = [
        TrafficSimulation(cluster, load, pattern=pattern, seed=11, injector=injector)
        for load in loads
    ]
    batch_results = TrafficBatch(simulations).run(100, 250, record_flits=True)
    for load, vector_result, batch_result in zip(
        loads, vector_results, batch_results
    ):
        _assert_equal(vector_result, batch_result, (cores, pattern, injector, load))


@pytest.mark.parametrize("topology", ["top1", "top4", "toph", "topx"])
def test_batch_every_topology_smoke(topology):
    """Short high-load smoke batch across all four topologies."""
    config = MemPoolConfig.tiny(topology)
    vector_result = _vector_run(config, 0.6, "uniform", "poisson", seed=7)
    cluster = MemPoolCluster(config, engine="batch")
    simulations = [TrafficSimulation(cluster, 0.6, seed=7)]
    batch_result = TrafficBatch(simulations).run(100, 250, record_flits=True)[0]
    _assert_equal(vector_result, batch_result, topology)


def test_heterogeneous_members_stay_independent():
    """Members differing in seed, load, pattern, injector and windows.

    The adversarial case for flattened state: if any flat index leaked
    between sim slices (queues, arbiter grants, RNG substreams), wildly
    different neighbours would perturb each other's logs.
    """
    config = MemPoolConfig.tiny("toph")
    members = [
        dict(load=0.1, seed=3, pattern="uniform", injector="poisson"),
        dict(load=0.5, seed=11, pattern="hotspot", injector="bursty"),
        dict(load=0.3, seed=7, pattern="bit_complement", injector="bernoulli"),
        dict(load=0.2, seed=3, pattern="local_biased", injector="poisson"),
    ]
    windows = [(50, 150), (100, 250), (60, 300), (100, 250)]
    vector_results = [
        _vector_run(
            config, member["load"], member["pattern"], member["injector"],
            member["seed"], window,
        )
        for member, window in zip(members, windows)
    ]
    cluster = MemPoolCluster(config, engine="batch")
    simulations = [
        TrafficSimulation(
            cluster, member["load"], pattern=member["pattern"],
            seed=member["seed"], injector=member["injector"],
        )
        for member in members
    ]
    batch_results = TrafficBatch(simulations).run(
        [window[0] for window in windows],
        [window[1] for window in windows],
        record_flits=True,
    )
    for index, (vector_result, batch_result) in enumerate(
        zip(vector_results, batch_results)
    ):
        _assert_equal(vector_result, batch_result, index)


def test_back_to_back_windows_on_batch_engine():
    """Repeated run() calls see the same persistent backlog as vector."""
    config = MemPoolConfig.tiny("top1")
    results = {}
    for engine in ("vector", "batch"):
        cluster = MemPoolCluster(config, engine=engine)
        simulation = TrafficSimulation(cluster, 0.6, seed=5)
        first = simulation.run(50, 150, record_flits=True)
        second = simulation.run(50, 150, record_flits=True)
        results[engine] = (
            first.flit_log, second.flit_log,
            second.local_fraction, second.average_latency,
        )
    assert results["vector"] == results["batch"]


def test_incompatible_configs_rejected():
    """Members on different cluster configurations must fail loudly."""
    sims = [
        TrafficSimulation(
            MemPoolCluster(MemPoolConfig.tiny("toph"), engine="batch"), 0.1
        ),
        TrafficSimulation(
            MemPoolCluster(MemPoolConfig.tiny("top1"), engine="batch"), 0.1
        ),
    ]
    with pytest.raises(ValueError, match="share one cluster configuration"):
        TrafficBatch(sims)


def test_legacy_engine_members_rejected():
    """A legacy-engine member fails construction with a clear message."""
    simulation = TrafficSimulation(
        MemPoolCluster(MemPoolConfig.tiny("toph"), engine="legacy"), 0.1
    )
    with pytest.raises(ValueError, match="SoA-engine"):
        TrafficBatch([simulation])


def test_simbatch_rejects_empty_batch():
    """Zero-member batches are configuration errors, not silent no-ops."""
    cluster = MemPoolCluster(MemPoolConfig.tiny("toph"), engine="batch")
    with pytest.raises(ValueError, match="at least one sim"):
        SimBatch(cluster.compiled_network(), 0)
    with pytest.raises(ValueError, match="at least one simulation"):
        TrafficBatch([])


def test_window_broadcast_validation():
    """Per-sim window sequences must match the member count."""
    cluster = MemPoolCluster(MemPoolConfig.tiny("toph"), engine="batch")
    simulations = [TrafficSimulation(cluster, 0.1, seed=s) for s in (0, 1)]
    with pytest.raises(ValueError, match="one entry per member"):
        TrafficBatch(simulations).run([50], 100)


def test_batch_engine_is_registered():
    """The engine registry and settings accept the batch engine."""
    from repro.evaluation.settings import ExperimentSettings

    assert "batch" in ENGINES
    assert ExperimentSettings(engine="batch").engine == "batch"
    with pytest.raises(ValueError, match="unknown engine"):
        ExperimentSettings(engine="simbatch")


class TestBatchRunner:
    """Sweep-level grouping through the experiments engine."""

    def test_groups_match_sequential_execution(self):
        """BatchRunner results equal per-point Executor results, in order."""
        from repro.evaluation.fig5 import fig5_sweep
        from repro.evaluation.settings import ExperimentSettings
        from repro.experiments import BatchRunner, Executor

        loads = (0.05, 0.2)
        topologies = ("top1", "toph")
        batch_specs = fig5_sweep(
            ExperimentSettings(engine="batch", warmup_cycles=50, measure_cycles=150),
            loads=loads, topologies=topologies,
        ).specs()
        vector_specs = fig5_sweep(
            ExperimentSettings(engine="vector", warmup_cycles=50, measure_cycles=150),
            loads=loads, topologies=topologies,
        ).specs()
        batch_results = BatchRunner(Executor()).run(batch_specs)
        vector_results = Executor().run(vector_specs)
        for batch_result, vector_result in zip(batch_results, vector_results):
            for field in COMPARED_FIELDS:
                assert getattr(batch_result, field) == getattr(
                    vector_result, field
                ), field

    def test_results_flow_through_existing_cache(self, tmp_path):
        """Batched results land in the ResultCache under unchanged keys."""
        from repro.evaluation.fig5 import fig5_sweep
        from repro.evaluation.settings import ExperimentSettings
        from repro.experiments import BatchRunner, Executor, ResultCache

        specs = fig5_sweep(
            ExperimentSettings(engine="batch", warmup_cycles=40, measure_cycles=80),
            loads=(0.05, 0.1), topologies=("toph",),
        ).specs()
        cache = ResultCache(tmp_path)
        first = BatchRunner(Executor(cache=cache)).run(specs)
        # A plain executor — no batching involved — must now hit for every
        # spec: batching is invisible at the cache layer.
        executor = Executor(cache=cache)
        second = executor.run(specs)
        assert executor.last_report.cache_hits == len(specs)
        assert [r.average_latency for r in first] == [
            r.average_latency for r in second
        ]

    def test_non_batchable_specs_fall_through(self):
        """Unknown runners execute on the wrapped executor unchanged."""
        from repro.experiments import BatchRunner, Executor, ExperimentSpec

        specs = [
            ExperimentSpec("repro.experiments.demo:multiply", {"a": a, "b": 7})
            for a in (2, 3)
        ]
        assert BatchRunner(Executor()).run(specs) == [14, 21]

    def test_fig6_grid_batches_into_one_group(self):
        """The fig6 (p_local x load) grid is one toph-compatible group."""
        from repro.evaluation.fig6 import assemble_fig6, fig6_sweep
        from repro.evaluation.settings import ExperimentSettings
        from repro.experiments import BatchRunner, Executor

        settings = ExperimentSettings(
            engine="batch", warmup_cycles=40, measure_cycles=120
        )
        specs = fig6_sweep(settings, loads=(0.2, 0.4), p_locals=(0.0, 1.0)).specs()
        results = BatchRunner(Executor()).run(specs)
        figure = assemble_fig6(specs, results)
        # p_local=1.0 traffic never leaves the tile: lower latency, all local.
        assert figure.latency(1.0)[-1] < figure.latency(0.0)[-1]
        assert all(
            result.local_fraction == 1.0 for result in figure.results[1.0]
        )

    def test_experiments_cli_accepts_engine_batch(self, capsys):
        """``python -m repro.experiments run --engine batch`` end to end."""
        from repro.experiments.__main__ import main

        assert main(["run", "fig10", "--engine", "batch", "--no-cache"]) == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_evaluation_cli_accepts_engine_batch(self, capsys):
        """``python -m repro.evaluation --engine batch`` end to end."""
        from repro.evaluation.__main__ import main

        assert main(["fig10", "--engine", "batch"]) == 0
        assert "Figure 10" in capsys.readouterr().out

    def test_mixed_topology_families_batch_per_family(self):
        """One spec list mixing topology families still equals per-point runs.

        A heterogeneous sweep — four structurally different families
        interleaved load-major, so same-family specs are never adjacent —
        must split into one SimBatch group per (family, params) with >= 2
        members each, and every result must equal the point's own vector
        run field for field, in the original spec order.
        """
        from repro.experiments import BatchRunner, Executor, ExperimentSpec
        from repro.experiments.batch import plan_batches

        families = (
            ("toph", {}),
            ("mesh", {"width": 4, "height": 4}),
            ("ring", {}),
            ("butterfly", {"radix": 2, "ports": 2}),
        )
        loads = (0.1, 0.25)

        def specs(engine):
            return [
                ExperimentSpec(
                    "repro.evaluation.topologies:simulate_topology_point",
                    {
                        "topology": topology,
                        "topology_params": dict(params),
                        "load": load,
                        "full_scale": False,
                        "warmup_cycles": 40,
                        "measure_cycles": 120,
                        "seed": 9,
                        "engine": engine,
                        "pattern": "uniform",
                        "injector": "poisson",
                    },
                )
                for load in loads
                for topology, params in families
            ]

        batch_specs = specs("batch")
        groups = [
            group for group in plan_batches(batch_specs) if len(group) > 1
        ]
        assert len(groups) == len(families)
        assert all(len(group) == len(loads) for group in groups)

        batch_results = BatchRunner(Executor()).run(batch_specs)
        vector_results = Executor().run(specs("vector"))
        assert [r.topology for r in batch_results] == [
            s.params["topology"] for s in batch_specs
        ]
        for batch_result, vector_result in zip(batch_results, vector_results):
            for field in COMPARED_FIELDS:
                assert getattr(batch_result, field) == getattr(
                    vector_result, field
                ), (batch_result.topology, field)
