"""Shared fixtures for the MemPool reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig

ALL_TOPOLOGIES = ("top1", "top4", "toph", "topx")


@pytest.fixture(params=ALL_TOPOLOGIES)
def topology(request) -> str:
    """Parametrised over every supported topology."""
    return request.param


@pytest.fixture
def tiny_config(topology) -> MemPoolConfig:
    """A 4-tile / 16-core configuration of the requested topology."""
    return MemPoolConfig.tiny(topology)


@pytest.fixture
def tiny_cluster(tiny_config) -> MemPoolCluster:
    """A 4-tile / 16-core cluster of the requested topology."""
    return MemPoolCluster(tiny_config)


@pytest.fixture
def toph_tiny_cluster() -> MemPoolCluster:
    """A 4-tile TopH cluster (the default topology of the paper)."""
    return MemPoolCluster(MemPoolConfig.tiny("toph"))


@pytest.fixture
def scaled_toph_cluster() -> MemPoolCluster:
    """A 16-tile / 64-core TopH cluster (the benchmark-harness default)."""
    return MemPoolCluster(MemPoolConfig.scaled("toph"))
