"""Tests of the functional shared-L1 memory."""

import numpy as np
import pytest

from repro.core.config import MemPoolConfig
from repro.core.memory import SharedL1Memory, to_signed, to_unsigned


@pytest.fixture
def memory():
    return SharedL1Memory(MemPoolConfig.tiny())


class TestWordAccess:
    def test_read_back_written_word(self, memory):
        memory.write_word(0x40, 0xDEADBEEF)
        assert memory.read_word(0x40) == 0xDEADBEEF

    def test_memory_is_zero_initialised(self, memory):
        assert memory.read_word(0x1234 & ~3) == 0

    def test_negative_values_wrap_to_32_bits(self, memory):
        memory.write_word(0, -1)
        assert memory.read_word(0) == 0xFFFFFFFF
        assert memory.read_signed(0) == -1

    def test_unaligned_access_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.read_word(2)
        with pytest.raises(ValueError):
            memory.write_word(5, 1)

    def test_out_of_range_rejected(self, memory):
        size = memory.config.l1_bytes
        with pytest.raises(ValueError):
            memory.read_word(size)
        with pytest.raises(ValueError):
            memory.write_word(-4, 0)

    def test_clear(self, memory):
        memory.write_word(16, 7)
        memory.clear()
        assert memory.read_word(16) == 0


class TestAtomics:
    def test_amo_add_returns_previous_value(self, memory):
        memory.write_word(8, 10)
        assert memory.amo_add(8, 5) == 10
        assert memory.read_word(8) == 15

    def test_amo_add_wraps(self, memory):
        memory.write_word(8, 0xFFFFFFFF)
        memory.amo_add(8, 1)
        assert memory.read_word(8) == 0

    def test_amo_swap(self, memory):
        memory.write_word(12, 3)
        assert memory.amo_swap(12, 9) == 3
        assert memory.read_word(12) == 9


class TestBulkAccess:
    def test_write_and_read_words(self, memory):
        values = [1, -2, 3, -4]
        memory.write_words(0x100, values)
        assert list(memory.read_words(0x100, 4)) == values

    def test_read_words_unsigned(self, memory):
        memory.write_words(0, [-1])
        assert memory.read_words(0, 1, signed=False)[0] == 0xFFFFFFFF

    def test_matrix_roundtrip(self, memory):
        matrix = np.arange(12).reshape(3, 4) - 5
        memory.write_matrix(0x200, matrix)
        assert np.array_equal(memory.read_matrix(0x200, 3, 4), matrix)

    def test_bulk_overrun_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.write_words(memory.config.l1_bytes - 4, [1, 2])
        with pytest.raises(ValueError):
            memory.read_words(memory.config.l1_bytes - 4, 2)


class TestConversions:
    def test_to_signed(self):
        assert to_signed(0xFFFFFFFF) == -1
        assert to_signed(0x7FFFFFFF) == 2**31 - 1
        assert to_signed(0x80000000) == -(2**31)

    def test_to_unsigned(self):
        assert to_unsigned(-1) == 0xFFFFFFFF
        assert to_unsigned(2**32 + 5) == 5
