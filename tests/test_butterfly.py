"""Tests of the radix-4 butterfly construction and routing (Figure 1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.interconnect.butterfly import ButterflyNetwork
from repro.interconnect.resources import ArbitrationPoint, RegisterStage


class TestStructure:
    def test_sixteen_port_radix4_has_two_layers_of_four_switches(self):
        butterfly = ButterflyNetwork("b", 16, radix=4)
        assert butterfly.num_layers == 2
        assert butterfly.num_switches == 8
        assert all(len(layer) == 4 for layer in butterfly.switches)

    def test_sixtyfour_port_radix4_has_three_layers_of_sixteen_switches(self):
        butterfly = ButterflyNetwork("b", 64, radix=4)
        assert butterfly.num_layers == 3
        assert butterfly.num_switches == 48

    def test_single_port_network_is_a_wire(self):
        butterfly = ButterflyNetwork("b", 1, radix=4)
        assert butterfly.num_layers == 0
        assert butterfly.route(0, 0) == []
        assert butterfly.output_resource(0) is None

    def test_non_power_of_radix_rejected(self):
        with pytest.raises(ValueError):
            ButterflyNetwork("b", 24, radix=4)

    def test_registered_layer_outputs_are_register_stages(self):
        butterfly = ButterflyNetwork("b", 16, radix=4, registered_layers=(0,))
        for switch in butterfly.switches[0]:
            assert all(isinstance(output, RegisterStage) for output in switch.outputs)
        for switch in butterfly.switches[1]:
            assert all(isinstance(output, ArbitrationPoint) for output in switch.outputs)

    def test_invalid_registered_layer_rejected(self):
        with pytest.raises(ValueError):
            ButterflyNetwork("b", 16, radix=4, registered_layers=(5,))

    def test_crosspoint_count(self):
        butterfly = ButterflyNetwork("b", 16, radix=4)
        assert butterfly.crosspoints == 8 * 16


class TestRouting:
    @pytest.mark.parametrize("ports,radix", [(16, 4), (64, 4), (16, 2), (8, 2)])
    def test_every_pair_is_routable_and_path_length_is_num_layers(self, ports, radix):
        butterfly = ButterflyNetwork("b", ports, radix=radix)
        for source in range(ports):
            for destination in range(ports):
                hops = butterfly.route_hops(source, destination)
                assert len(hops) == butterfly.num_layers

    def test_route_ends_at_the_destination_output(self):
        butterfly = ButterflyNetwork("b", 64, radix=4)
        for source in (0, 13, 37, 63):
            for destination in (0, 1, 31, 62):
                resources = butterfly.route(source, destination)
                assert resources[-1] is butterfly.output_resource(destination)

    def test_routing_is_oblivious_single_path(self):
        """The same source/destination pair always takes the same path."""
        butterfly = ButterflyNetwork("b", 16, radix=4)
        assert butterfly.route_hops(3, 9) == butterfly.route_hops(3, 9)

    def test_different_sources_to_same_destination_share_the_last_hop(self):
        butterfly = ButterflyNetwork("b", 16, radix=4)
        last_hops = {butterfly.route_hops(source, 7)[-1] for source in range(16)}
        assert len(last_hops) == 1

    def test_out_of_range_ports_rejected(self):
        butterfly = ButterflyNetwork("b", 16, radix=4)
        with pytest.raises(ValueError):
            butterfly.route(16, 0)
        with pytest.raises(ValueError):
            butterfly.route(0, -1)

    @given(
        source=st.integers(min_value=0, max_value=63),
        destination=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=200, deadline=None)
    def test_hops_are_within_bounds(self, source, destination):
        butterfly = ButterflyNetwork("b", 64, radix=4)
        for layer, switch, output in butterfly.route_hops(source, destination):
            assert 0 <= layer < 3
            assert 0 <= switch < 16
            assert 0 <= output < 4

    def test_uniform_traffic_spreads_over_first_layer_outputs(self):
        """No single first-layer output should carry all the traffic."""
        butterfly = ButterflyNetwork("b", 16, radix=4)
        usage = {}
        for source in range(16):
            for destination in range(16):
                hop = butterfly.route_hops(source, destination)[0]
                usage[hop] = usage.get(hop, 0) + 1
        assert max(usage.values()) <= 16
        assert len(usage) == 16
