"""Unit tests of the differential-fuzz machinery itself.

Separate from ``test_fuzz_differential`` (the budgeted CI campaign):
these tests pin the *harness* — replay-spec round trips, strategy
validity, the divergence detector and its reproducer workflow, and the
``python -m repro.validation`` CLI — with fixed inputs, so they are
deterministic and budget-independent.
"""

from __future__ import annotations

import pytest

from repro.traffic.simulation import TrafficSimulation
from repro.validation import (
    DivergenceError,
    FuzzCase,
    check_case,
    run_case,
    topology_selections,
)
from repro.validation.fuzz import REPRODUCER_FILE_ENV
from repro.validation.fuzz import fuzzable_injectors

#: A configuration with plenty of traffic — divergence-injection tests
#: need a non-empty flit log to tamper with.
BUSY_SPEC = (
    "toph:pattern=hotspot,p_hot=0.7,num_hotspots=2,"
    "injector=poisson,seed=11,load=0.4,warmup=30,measure=120"
)


class TestSpecRoundTrip:
    """``FuzzCase.to_spec`` / ``from_spec`` are exact inverses."""

    def test_flat_params_route_back_to_their_owners(self):
        case = FuzzCase.from_spec(BUSY_SPEC)
        assert case.topology == "toph"
        assert dict(case.pattern_params) == {"p_hot": 0.7, "num_hotspots": 2}
        assert case.injector == "poisson"
        assert FuzzCase.from_spec(case.to_spec()) == case

    def test_topology_params_ride_the_same_grammar(self):
        case = FuzzCase(
            topology="mesh", pattern="uniform", injector="bursty",
            seed=5, load=0.2, warmup=20, measure=80,
            topology_params=(("width", 2), ("height", 2)),
            injector_params=(("burst_len", 3.5), ("burst_rate", 0.9)),
        )
        rebuilt = FuzzCase.from_spec(case.to_spec())
        assert rebuilt == case
        assert dict(rebuilt.topology_params) == {"width": 2, "height": 2}
        assert dict(rebuilt.injector_params) == {
            "burst_len": 3.5, "burst_rate": 0.9,
        }

    def test_reserved_keys_have_defaults(self):
        case = FuzzCase.from_spec("ring")
        assert (case.pattern, case.injector) == ("uniform", "poisson")
        assert case.scale == "tiny"

    def test_missing_name_lists_catalogue(self):
        with pytest.raises(ValueError, match="missing the topology name"):
            FuzzCase.from_spec(":seed=1")

    def test_unknown_topology_lists_catalogue(self):
        with pytest.raises(ValueError, match="unknown topology 'warp'.*toph"):
            FuzzCase.from_spec("warp:seed=1")

    def test_malformed_item_names_missing_part(self):
        with pytest.raises(ValueError, match="missing the '='"):
            FuzzCase.from_spec("toph:seed")
        with pytest.raises(ValueError, match="missing the value"):
            FuzzCase.from_spec("toph:seed=")
        with pytest.raises(ValueError, match="missing the key"):
            FuzzCase.from_spec("toph:=3")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate parameter 'seed'"):
            FuzzCase.from_spec("toph:seed=1,seed=2")

    def test_unknown_param_lists_accepted_and_reserved(self):
        with pytest.raises(
            ValueError, match="unknown parameter 'p_warm'.*reserved"
        ):
            FuzzCase.from_spec("toph:pattern=hotspot,p_warm=0.5")

    def test_param_owned_by_wrong_component_is_unknown(self):
        # p_hot belongs to hotspot; with pattern=uniform nothing accepts it.
        with pytest.raises(ValueError, match="unknown parameter 'p_hot'"):
            FuzzCase.from_spec("toph:pattern=uniform,p_hot=0.5")

    def test_invalid_value_uses_registry_message(self):
        with pytest.raises(
            ValueError, match="invalid value for parameter 'p_hot'"
        ):
            FuzzCase.from_spec("toph:pattern=hotspot,p_hot=1.5")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale 'huge'"):
            FuzzCase.from_spec("toph:scale=huge")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="warmup >= 0"):
            FuzzCase.from_spec("toph:warmup=-1")

    def test_structurally_invalid_topology_rejected(self):
        # Every parameter passes its own validator; only the
        # cross-parameter tiling constraint is violated.
        with pytest.raises(ValueError, match="do not tile num_tiles"):
            FuzzCase.from_spec("mesh:width=5,height=5")


class TestStrategies:
    """The sampled space is valid by construction."""

    def test_topology_selections_cover_every_family(self):
        selections = topology_selections("tiny")
        assert {name for name, _ in selections} == {
            "top1", "top4", "toph", "topx", "ring", "fully_connected",
            "mesh", "torus", "butterfly", "hierarchical",
        }

    def test_scaled_selections_are_valid_too(self):
        # validate_topology runs inside topology_selections; reaching the
        # return is the assertion.
        assert topology_selections("scaled")

    def test_generated_cases_respect_the_registries(self):
        hypothesis = pytest.importorskip("hypothesis")
        from repro.validation import fuzz_cases

        @hypothesis.settings(max_examples=20, deadline=None)
        @hypothesis.given(fuzz_cases())
        def probe(case):
            # FuzzCase.__post_init__ re-validates against the registries;
            # additionally pin the cross-component bursty constraint.
            assert 0.05 <= case.load <= 0.85
            if case.injector == "bursty":
                assert dict(case.injector_params)["burst_rate"] >= case.load

        probe()

    def test_degree_skewed_cases_are_hotspot_heavy(self):
        hypothesis = pytest.importorskip("hypothesis")
        from repro.validation import degree_skewed_cases

        @hypothesis.settings(max_examples=10, deadline=None)
        @hypothesis.given(degree_skewed_cases())
        def probe(case):
            assert case.pattern == "hotspot"
            assert dict(case.pattern_params)["p_hot"] >= 0.6
            assert dict(case.pattern_params)["num_hotspots"] <= 2

        probe()


def _tampered_vector(monkeypatch):
    """Patch the vector engine to corrupt its last completed flit."""
    import repro.engine.traffic as traffic_module

    real = traffic_module.run_vector_traffic

    def tampered(simulation, warmup_cycles, measure_cycles, record_flits=False):
        result = real(
            simulation, warmup_cycles, measure_cycles, record_flits=record_flits
        )
        if record_flits and result.flit_log:
            entry = result.flit_log[-1]
            result.flit_log[-1] = entry[:-1] + (entry[-1] + 1,)
        return result

    monkeypatch.setattr(traffic_module, "run_vector_traffic", tampered)


class TestDivergenceDetection:
    """An injected engine divergence is caught with a working reproducer."""

    def test_clean_engines_agree(self):
        case = FuzzCase.from_spec(BUSY_SPEC)
        results = check_case(case)
        assert results["legacy"].flit_log == results["batch"].flit_log

    def test_injected_divergence_is_caught(self, monkeypatch):
        _tampered_vector(monkeypatch)
        case = FuzzCase.from_spec(BUSY_SPEC)
        with pytest.raises(DivergenceError) as excinfo:
            check_case(case)
        error = excinfo.value
        assert error.engines == ("legacy", "vector")
        assert "--replay" in str(error)
        assert "flit-log entry" in str(error)

    def test_replay_spec_reproduces_the_divergence(self, monkeypatch):
        _tampered_vector(monkeypatch)
        with pytest.raises(DivergenceError) as excinfo:
            check_case(FuzzCase.from_spec(BUSY_SPEC))
        # The emitted spec round-trips into a case that still fails while
        # the engine is broken — the reproducer workflow end to end.
        replayed = FuzzCase.from_spec(excinfo.value.replay_spec)
        with pytest.raises(DivergenceError):
            check_case(replayed)

    def test_reproducer_file_collects_specs(self, monkeypatch, tmp_path):
        _tampered_vector(monkeypatch)
        reproducers = tmp_path / "fuzz-reproducers.txt"
        monkeypatch.setenv(REPRODUCER_FILE_ENV, str(reproducers))
        case = FuzzCase.from_spec(BUSY_SPEC)
        with pytest.raises(DivergenceError):
            check_case(case)
        with pytest.raises(DivergenceError):
            check_case(case)
        lines = reproducers.read_text().splitlines()
        assert lines == [case.to_spec(), case.to_spec()]

    def test_field_mismatch_reported_without_flit_logs(self):
        case = FuzzCase.from_spec(BUSY_SPEC)
        from repro.validation.fuzz import _describe_mismatch

        reference = run_case(case, "vector")
        assert _describe_mismatch("a", reference, "b", reference) is None
        import dataclasses

        bumped = dataclasses.replace(
            reference, average_latency=reference.average_latency + 1.0
        )
        detail = _describe_mismatch("a", reference, "b", bumped)
        assert "average_latency" in detail


class TestSeedSensitivity:
    """Distinct seeds change the flit log for every injection process.

    The regression guard for the RNG substream plumbing: if an injector
    (or the pattern behind it) ever stops consuming its per-seed
    substream, two seeds collapse onto one schedule and the differential
    fuzzer loses its seed axis silently.
    """

    # The fuzzable set: seed sensitivity is exactly the fuzzer's seed
    # axis, and the trace injector is deliberately seed-free (it replays
    # a file and draws no RNG at all).
    @pytest.mark.parametrize("injector", fuzzable_injectors())
    def test_two_seeds_differ(self, injector):
        from repro.core.cluster import MemPoolCluster
        from repro.core.config import MemPoolConfig

        logs = []
        for seed in (3, 4):
            cluster = MemPoolCluster(MemPoolConfig.tiny(), engine="vector")
            simulation = TrafficSimulation(
                cluster, 0.3, pattern="uniform", seed=seed, injector=injector
            )
            result = simulation.run(30, 120, record_flits=True)
            assert result.flit_log  # non-vacuous: traffic actually flowed
            logs.append(result.flit_log)
        assert logs[0] != logs[1]


class TestValidationCli:
    """``python -m repro.validation`` replay and fuzz paths."""

    def test_replay_agreeing_case_exits_zero(self, capsys):
        from repro.validation.__main__ import main

        assert main(["--replay", BUSY_SPEC]) == 0
        out = capsys.readouterr().out
        assert "engines agree" in out

    def test_replay_bad_spec_exits_two(self, capsys):
        from repro.validation.__main__ import main

        assert main(["--replay", "warp:seed=1"]) == 2
        assert "unknown topology" in capsys.readouterr().err

    def test_replay_structural_error_exits_two(self, capsys):
        from repro.validation.__main__ import main

        assert main(["--replay", "mesh:width=5,height=5"]) == 2
        assert "do not tile" in capsys.readouterr().err

    def test_replay_divergence_exits_one(self, capsys, monkeypatch):
        from repro.validation.__main__ import main

        _tampered_vector(monkeypatch)
        assert main(["--replay", BUSY_SPEC]) == 1
        assert "--replay" in capsys.readouterr().err

    def test_fuzz_command_runs_budget(self, capsys):
        pytest.importorskip("hypothesis")
        from repro.validation.__main__ import main

        assert main(["fuzz", "--budget", "3"]) == 0
        assert "3 configurations checked" in capsys.readouterr().out

    def test_fuzz_command_rejects_bad_budget(self):
        pytest.importorskip("hypothesis")
        from repro.validation.__main__ import main

        with pytest.raises(ValueError, match="budget must be positive"):
            main(["fuzz", "--budget", "0"])

    def test_no_arguments_prints_help(self, capsys):
        from repro.validation.__main__ import main

        assert main([]) == 2
        assert "usage" in capsys.readouterr().out
