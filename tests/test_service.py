"""Tests of the sweep service: job layer, HTTP surface, streams, dedup.

Covers the PR-9 job-layer checklist: the full legal/illegal transition
table, client reconnect mid-event-stream, cancellation of queued vs
running jobs, concurrent identical submissions coalescing to one job,
and malformed submissions answered with structured 4xx errors.
"""

from __future__ import annotations

import http.client
import json
import pickle
import threading
import time

import pytest

from repro.experiments.cache import MemoryCache
from repro.experiments.executor import Executor
from repro.experiments.spec import ExperimentSpec
from repro.service import (
    IllegalTransition,
    Job,
    JobState,
    LEGAL_TRANSITIONS,
    ServiceClient,
    ServiceError,
    SpecError,
    SweepService,
    build_specs,
    expected_work,
    job_key,
)
from repro.service.jobs import prune_finished, sort_queued

MULTIPLY = "repro.experiments.demo:multiply"
SLOW = "repro.experiments.demo:slow_multiply"


def sweep_payload(runner=MULTIPLY, grid=None, base=None, name=""):
    return {
        "runner": runner,
        "grid": grid if grid is not None else {"a": [2, 3]},
        "base": base if base is not None else {"b": 10},
        "name": name,
    }


@pytest.fixture
def service():
    """A started in-memory service; stopped (with its jobs) on teardown."""
    started = []

    def factory(**kwargs):
        kwargs.setdefault("workers", "1")
        kwargs.setdefault("cache", MemoryCache())
        instance = SweepService(**kwargs).start()
        started.append(instance)
        return instance

    yield factory
    for instance in started:
        instance.stop()


def make_client(instance, timeout=30.0):
    return ServiceClient("127.0.0.1", instance.port, timeout=timeout)


# --------------------------------------------------------------------- #
# Job layer: state machine, cost model, ordering
# --------------------------------------------------------------------- #


class TestStateMachine:
    ALL = list(JobState)

    @pytest.mark.parametrize("source", ALL)
    @pytest.mark.parametrize("target", ALL)
    def test_full_transition_table(self, source, target):
        job = Job("j", "k", "t", [])
        job.state = source
        if target in LEGAL_TRANSITIONS[source]:
            job.transition(target)
            assert job.state is target
        else:
            with pytest.raises(IllegalTransition):
                job.transition(target)
            assert job.state is source  # unchanged after the refusal

    def test_terminal_states_accept_nothing(self):
        for state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED):
            assert state.terminal
            assert LEGAL_TRANSITIONS[state] == frozenset()

    def test_transitions_stamp_timestamps(self):
        job = Job("j", "k", "t", [])
        assert job.started_s is None and job.finished_s is None
        job.transition(JobState.RUNNING)
        assert job.started_s is not None
        job.transition(JobState.DONE)
        assert job.finished_s >= job.started_s


class TestJobHelpers:
    def specs(self, count=3):
        return [
            ExperimentSpec(MULTIPLY, {"a": index, "b": 2})
            for index in range(count)
        ]

    def test_job_key_is_deterministic_and_order_sensitive(self):
        specs = self.specs()
        assert job_key(specs) == job_key(list(specs))
        assert job_key(specs) != job_key(specs[::-1])
        assert job_key(specs) != job_key(specs[:2])

    def test_expected_work_counts_only_misses(self):
        specs = self.specs(4)
        assert expected_work(specs) == 4
        assert expected_work(specs, miss_indices=[1, 3]) == 2
        assert expected_work(specs, miss_indices=[]) == 0

    def test_sort_queued_is_sjf_with_fifo_ties(self):
        jobs = [
            Job("big", "k1", "t", [], cost=9, submit_seq=0),
            Job("tie-late", "k2", "t", [], cost=2, submit_seq=5),
            Job("tie-early", "k3", "t", [], cost=2, submit_seq=1),
        ]
        assert [job.job_id for job in sort_queued(jobs)] == [
            "tie-early", "tie-late", "big",
        ]

    def test_prune_finished_respects_ttl_and_liveness(self):
        done = Job("done", "k1", "t", [])
        done.state, done.finished_s = JobState.DONE, 100.0
        live = Job("live", "k2", "t", [])
        jobs = {"done": done, "live": live}
        by_key = {"k1": "done", "k2": "live"}
        assert prune_finished(jobs, by_key, ttl_s=50.0, now=120.0) == []
        assert prune_finished(jobs, by_key, ttl_s=10.0, now=120.0) == ["done"]
        assert "done" not in jobs and "k1" not in by_key
        assert "live" in jobs  # never pruned while non-terminal


class TestBuildSpecs:
    def test_experiment_payload_expands_registry_sweep(self):
        title, specs, assemble, engine = build_specs(
            {"experiment": "fig10", "settings": {}}
        )
        assert title == "fig10" and len(specs) >= 1
        assert callable(assemble)

    def test_raw_sweep_payload(self):
        title, specs, assemble, engine = build_specs(sweep_payload(name="demo"))
        assert title == "demo" and len(specs) == 2 and assemble is None

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ([1, 2], "JSON object"),
            ({}, "needs either"),
            ({"experiment": "nope"}, "unknown experiment"),
            ({"experiment": "fig10", "settings": {"bogus": 1}}, "bad settings"),
            ({"experiment": "fig10", "settings": 7}, "'settings' must be"),
            ({"runner": "no.such.module:fn"}, "bad runner"),
            ({"runner": MULTIPLY, "grid": 3}, "'grid' and 'base'"),
            ({"runner": MULTIPLY, "grid": {"a": []}}, "zero points"),
        ],
    )
    def test_bad_payloads_raise_spec_errors(self, payload, fragment):
        with pytest.raises(SpecError, match=fragment):
            build_specs(payload)


# --------------------------------------------------------------------- #
# HTTP surface
# --------------------------------------------------------------------- #


class TestEndpoints:
    def test_submit_run_fetch_round_trip(self, service):
        instance = service()
        client = make_client(instance)
        assert client.healthz()["status"] == "ok"
        reply = client.submit(sweep_payload())
        assert reply["deduplicated"] is False
        job = client.wait(reply["job"]["id"], timeout_s=30)
        assert job["state"] == "done"
        assert job["computed"] == 2 and job["cache_hits"] == 0
        # /results serves bytes equal to a direct Executor run's pickle.
        direct = Executor().run(
            [ExperimentSpec(MULTIPLY, {"a": 2, "b": 10})]
        )[0]
        blob = client.result(job["result_keys"][0])
        assert blob == pickle.dumps(direct, protocol=pickle.HIGHEST_PROTOCOL)
        assert pickle.loads(blob) == 20

    def test_malformed_submissions_return_structured_400(self, service):
        instance = service()
        client = make_client(instance)
        for payload in (
            {},
            {"experiment": "nope"},
            {"experiment": "fig10", "settings": {"bogus": 1}},
            {"runner": "no.such.module:fn"},
        ):
            with pytest.raises(ServiceError) as info:
                client.submit(payload)
            assert info.value.status == 400
            assert info.value.payload["error"] == "bad_request"
            assert info.value.payload["detail"]

    def test_non_json_body_is_a_structured_400(self, service):
        instance = service()
        connection = http.client.HTTPConnection("127.0.0.1", instance.port)
        try:
            connection.request("POST", "/sweeps", body=b"not json{")
            reply = connection.getresponse()
            assert reply.status == 400
            assert json.loads(reply.read())["error"] == "bad_request"
        finally:
            connection.close()

    def test_unknown_routes_and_methods(self, service):
        instance = service()
        client = make_client(instance)
        with pytest.raises(ServiceError) as info:
            client.job("nope")
        assert info.value.status == 404
        with pytest.raises(ServiceError) as info:
            client._request_json("PUT", "/sweeps")
        assert info.value.status == 405
        with pytest.raises(ServiceError) as info:
            client._request_json("GET", "/no/such/route")
        assert info.value.status == 404

    def test_missing_result_key_is_404(self, service):
        instance = service()
        client = make_client(instance)
        with pytest.raises(ServiceError) as info:
            client.result("f" * 64)
        assert info.value.status == 404

    def test_failed_job_reports_error_and_does_not_dedup(self, service):
        instance = service()
        client = make_client(instance)
        # b=None makes multiply raise TypeError at execution time; the
        # spec itself is valid, so the failure lands in the job state.
        payload = sweep_payload(grid={"a": [1]}, base={"b": None})
        job = client.wait(client.submit(payload)["job"]["id"], timeout_s=30)
        assert job["state"] == "failed"
        assert "TypeError" in job["error"]
        # A failed job must not swallow the resubmission.
        assert client.submit(payload)["deduplicated"] is False


# --------------------------------------------------------------------- #
# Dedup and queue ordering
# --------------------------------------------------------------------- #


class TestDedupAndQueue:
    def test_identical_resubmission_joins_the_finished_job(self, service):
        instance = service()
        client = make_client(instance)
        first = client.submit(sweep_payload())
        client.wait(first["job"]["id"], timeout_s=30)
        second = client.submit(sweep_payload())
        assert second["deduplicated"] is True
        assert second["job"]["id"] == first["job"]["id"]

    def test_concurrent_identical_submits_coalesce_to_one_job(self, service):
        instance = service(max_jobs=1)
        client = make_client(instance)
        payload = sweep_payload(
            runner=SLOW, grid={"a": [1, 2]}, base={"b": 3, "delay_s": 0.2}
        )
        replies, errors = [], []

        def submit():
            try:
                replies.append(client.submit(payload))
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        ids = {reply["job"]["id"] for reply in replies}
        assert len(ids) == 1
        assert sum(not reply["deduplicated"] for reply in replies) == 1
        job = client.wait(ids.pop(), timeout_s=30)
        assert job["state"] == "done"
        assert job["computed"] == 2  # one job computed the points once

    def test_expired_job_resubmission_is_served_from_cache(self, service):
        instance = service(ttl_s=0.0)  # finished jobs prune immediately
        client = make_client(instance)
        first = client.wait(
            client.submit(sweep_payload())["job"]["id"], timeout_s=30
        )
        assert first["computed"] == 2
        second_reply = client.submit(sweep_payload())
        assert second_reply["deduplicated"] is False  # registry forgot it
        second = client.wait(second_reply["job"]["id"], timeout_s=30)
        assert second["state"] == "done"
        assert second["computed"] == 0  # every point came from the cache
        assert second["cache_hits"] == 2
        assert second["result_keys"] == first["result_keys"]

    def test_queue_runs_shortest_expected_work_first(self, service):
        instance = service(max_jobs=1)
        client = make_client(instance)
        blocker = client.submit(
            sweep_payload(
                runner=SLOW, grid={"a": [1]}, base={"b": 1, "delay_s": 0.4},
                name="blocker",
            )
        )["job"]
        expensive = client.submit(
            sweep_payload(
                runner=SLOW,
                grid={"a": [1, 2, 3, 4, 5]},
                base={"b": 2, "delay_s": 0.05},
                name="expensive",
            )
        )["job"]
        cheap = client.submit(
            sweep_payload(
                runner=SLOW, grid={"a": [9]}, base={"b": 2, "delay_s": 0.05},
                name="cheap",
            )
        )["job"]
        assert expensive["cost"] > cheap["cost"]
        client.wait(expensive["id"], timeout_s=30)
        client.wait(cheap["id"], timeout_s=30)
        started = {
            name: client.job(job["id"])["started_s"]
            for name, job in (("expensive", expensive), ("cheap", cheap))
        }
        assert started["cheap"] < started["expensive"]
        client.wait(blocker["id"], timeout_s=30)


# --------------------------------------------------------------------- #
# Cancellation
# --------------------------------------------------------------------- #


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self, service):
        instance = service(max_jobs=1)
        client = make_client(instance)
        blocker = client.submit(
            sweep_payload(
                runner=SLOW, grid={"a": [1]}, base={"b": 1, "delay_s": 0.5},
                name="blocker",
            )
        )["job"]
        queued = client.submit(sweep_payload(name="queued"))["job"]
        assert queued["state"] == "queued"
        reply = client.cancel(queued["id"])
        assert reply["job"]["state"] == "cancelled"
        assert client.job(queued["id"])["state"] == "cancelled"
        # A cancelled job never blocks a fresh submission of the same spec.
        fresh = client.submit(sweep_payload(name="queued"))
        assert fresh["deduplicated"] is False
        client.wait(blocker["id"], timeout_s=30)
        client.wait(fresh["job"]["id"], timeout_s=30)

    def test_cancel_running_job_lands_between_points(self, service):
        instance = service()
        client = make_client(instance)
        job = client.submit(
            sweep_payload(
                runner=SLOW,
                grid={"a": list(range(20))},
                base={"b": 2, "delay_s": 0.1},
            )
        )["job"]
        deadline = time.monotonic() + 10.0
        while client.job(job["id"])["state"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        reply = client.cancel(job["id"])
        assert reply.get("cancelling") is True  # 202: best-effort
        final = client.wait(job["id"], timeout_s=30)
        assert final["state"] == "cancelled"
        assert final["computed"] == 0  # report of a cancelled run is unset

    def test_cancel_terminal_job_conflicts(self, service):
        instance = service()
        client = make_client(instance)
        job = client.wait(
            client.submit(sweep_payload())["job"]["id"], timeout_s=30
        )
        with pytest.raises(ServiceError) as info:
            client.cancel(job["id"])
        assert info.value.status == 409


# --------------------------------------------------------------------- #
# Event streams
# --------------------------------------------------------------------- #


class TestEventStream:
    def test_stream_carries_state_and_point_events(self, service):
        instance = service()
        client = make_client(instance)
        job = client.submit(sweep_payload())["job"]
        events = list(client.events(job["id"]))
        assert [event["seq"] for event in events] == list(range(len(events)))
        kinds = [event["kind"] for event in events]
        assert kinds.count("point") == 2
        states = [
            event["state"] for event in events if event["kind"] == "state"
        ]
        assert states == ["queued", "running", "done"]
        assert "summary" in events[-1]

    def test_stream_resumes_from_cursor_after_disconnect(self, service):
        instance = service()
        client = make_client(instance)
        job = client.submit(
            sweep_payload(
                runner=SLOW,
                grid={"a": [1, 2, 3, 4, 5, 6]},
                base={"b": 2, "delay_s": 0.05},
            )
        )["job"]
        stream = client.events(job["id"])
        seen = [next(stream), next(stream)]
        stream.close()  # drop the connection mid-stream
        resumed = list(
            client.events(job["id"], start=seen[-1]["seq"] + 1)
        )
        seqs = [event["seq"] for event in seen + resumed]
        assert seqs == list(range(len(seqs)))  # no gaps, no duplicates
        assert resumed[-1]["state"] == "done"

    def test_stream_of_finished_job_replays_and_closes(self, service):
        instance = service()
        client = make_client(instance)
        job_id = client.submit(sweep_payload())["job"]["id"]
        client.wait(job_id, timeout_s=30)
        replay = list(client.events(job_id))
        assert replay[-1]["state"] == "done"
        partial = list(client.events(job_id, start=len(replay) - 1))
        assert len(partial) == 1

    def test_bad_cursor_is_a_400(self, service):
        instance = service()
        client = make_client(instance)
        job_id = client.submit(sweep_payload())["job"]["id"]
        with pytest.raises(ServiceError) as info:
            list(client._stream_once(job_id, "wat"))
        assert info.value.status == 400


# --------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------- #


class TestLifecycle:
    def test_taken_port_raises_in_the_calling_thread(self, service):
        instance = service()
        with pytest.raises(OSError):
            SweepService(port=instance.port, cache=None).start()

    def test_service_without_cache_disables_results(self, service):
        instance = service(cache=None)
        client = make_client(instance)
        job = client.wait(
            client.submit(sweep_payload())["job"]["id"], timeout_s=30
        )
        assert job["state"] == "done"
        with pytest.raises(ServiceError) as info:
            client.result(job["result_keys"][0])
        assert info.value.status == 404
