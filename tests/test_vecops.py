"""Tests of the additional vector kernels (axpy, dot product)."""

import numpy as np
import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.kernels import EXTRA_KERNELS, AxpyKernel, DotProductKernel


def tiny_cluster(topology="toph", **overrides):
    return MemPoolCluster(MemPoolConfig.tiny(topology, **overrides))


class TestAxpyKernel:
    def test_result_matches_numpy(self):
        kernel = AxpyKernel(tiny_cluster(), length=128, scalar=5)
        result = kernel.run()
        assert result.correct
        assert np.array_equal(kernel.result(), 5 * kernel.x + kernel.y)

    def test_all_cores_participate(self):
        kernel = AxpyKernel(tiny_cluster(), length=128)
        result = kernel.run(verify=False)
        assert result.system.active_cores == 16

    def test_streaming_kernel_issues_two_loads_and_one_store_per_element(self):
        length = 64
        kernel = AxpyKernel(tiny_cluster(), length=length)
        result = kernel.run(verify=False)
        total = result.system.total
        assert total.loads == 2 * length
        assert total.stores == length

    def test_short_vector_with_ragged_chunks(self):
        kernel = AxpyKernel(tiny_cluster(), length=37)
        assert kernel.run().correct

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            AxpyKernel(tiny_cluster(), length=0)

    def test_negative_scalar(self):
        kernel = AxpyKernel(tiny_cluster(), length=32, scalar=-7)
        assert kernel.run().correct

    def test_ideal_topology_not_slower(self):
        real = AxpyKernel(tiny_cluster("toph"), length=128).run(verify=False).cycles
        ideal = AxpyKernel(tiny_cluster("topx"), length=128).run(verify=False).cycles
        assert ideal <= real


class TestDotProductKernel:
    def test_result_matches_numpy(self):
        kernel = DotProductKernel(tiny_cluster(), length=200)
        result = kernel.run()
        assert result.correct
        assert kernel.result()[0] == int(np.dot(kernel.a, kernel.b))

    def test_barrier_used_exactly_once(self):
        kernel = DotProductKernel(tiny_cluster(), length=64)
        result = kernel.run(verify=False)
        assert result.system.barrier_episodes == 1

    def test_uneven_length_distribution(self):
        kernel = DotProductKernel(tiny_cluster(), length=101)
        assert kernel.run().correct

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            DotProductKernel(tiny_cluster(), length=-1)

    def test_registry_contains_extra_kernels(self):
        assert set(EXTRA_KERNELS) == {"axpy", "dotprod"}
