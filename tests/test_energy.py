"""Tests of the energy and power models (Figure 10, Section VI-D)."""

import pytest

from repro.core.agents import Compute, Load, Store, TraceAgent, Use
from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.core.system import MemPoolSystem
from repro.energy import EnergyModel, EnergyParameters, PowerModel
from repro.energy.power import PowerParameters


@pytest.fixture
def full_toph_cluster():
    return MemPoolCluster(MemPoolConfig.full("toph"))


class TestInstructionEnergies:
    def test_figure10_values(self, full_toph_cluster):
        """The calibrated model must reproduce the paper's Figure 10 numbers."""
        model = EnergyModel(full_toph_cluster)
        energies = {entry.name: entry for entry in model.instruction_energies()}
        assert energies["add"].total_pj == pytest.approx(3.7)
        assert energies["mul"].total_pj == pytest.approx(7.0)
        assert energies["local load"].total_pj == pytest.approx(8.4, abs=0.2)
        assert energies["remote load"].total_pj == pytest.approx(16.9, abs=1.0)

    def test_local_load_interconnect_share(self, full_toph_cluster):
        model = EnergyModel(full_toph_cluster)
        local = model.local_interconnect_pj()
        assert local == pytest.approx(4.5, abs=0.1)

    def test_remote_interconnect_ratio(self, full_toph_cluster):
        """Remote accesses use ~2.9x the interconnect energy of local ones."""
        model = EnergyModel(full_toph_cluster)
        ratio = model.average_remote_interconnect_pj() / model.local_interconnect_pj()
        assert 2.4 <= ratio <= 3.2

    def test_remote_load_uses_about_twice_the_energy_of_local(self, full_toph_cluster):
        model = EnergyModel(full_toph_cluster)
        energies = {entry.name: entry for entry in model.instruction_energies()}
        ratio = energies["remote load"].total_pj / energies["local load"].total_pj
        assert 1.7 <= ratio <= 2.2

    def test_ideal_topology_has_cheap_remote_accesses(self):
        cluster = MemPoolCluster(MemPoolConfig.full("topx"))
        model = EnergyModel(cluster)
        assert model.average_remote_interconnect_pj() == pytest.approx(
            model.local_interconnect_pj()
        )

    def test_same_group_cheaper_than_remote_group_for_toph(self, full_toph_cluster):
        model = EnergyModel(full_toph_cluster)
        config = full_toph_cluster.config
        same_group = model.interconnect_energy_pj(0, 5 * config.banks_per_tile)
        other_group = model.interconnect_energy_pj(0, 40 * config.banks_per_tile)
        assert same_group < other_group

    def test_custom_parameters_respected(self, full_toph_cluster):
        parameters = EnergyParameters(core_alu_pj=1.0)
        model = EnergyModel(full_toph_cluster, parameters)
        energies = {entry.name: entry for entry in model.instruction_energies()}
        assert energies["add"].total_pj == pytest.approx(1.0)


class TestProgramEnergy:
    def _run_small_program(self, scrambling=True):
        cluster = MemPoolCluster(MemPoolConfig.tiny("toph", scrambling_enabled=scrambling))
        local = cluster.layout.stack_pointer(0) - 8
        remote = 2 * cluster.config.seq_region_bytes_per_tile + 16
        operations = [
            Compute(4, muls=1),
            Load(local, tag="l"),
            Use("l"),
            Load(remote, tag="r"),
            Use("r"),
            Store(local),
        ]
        system = MemPoolSystem(cluster, {0: TraceAgent(operations)})
        return cluster, system.run()

    def test_breakdown_components_are_positive(self):
        cluster, result = self._run_small_program()
        breakdown = EnergyModel(cluster).program_energy(result.total)
        assert breakdown.core_pj > 0
        assert breakdown.interconnect_pj > 0
        assert breakdown.bank_pj > 0
        assert breakdown.icache_pj > 0
        assert breakdown.total_pj == pytest.approx(
            breakdown.core_pj + breakdown.interconnect_pj + breakdown.bank_pj + breakdown.icache_pj
        )

    def test_bank_energy_counts_every_access(self):
        cluster, result = self._run_small_program()
        model = EnergyModel(cluster)
        breakdown = model.program_energy(result.total)
        assert breakdown.bank_pj == pytest.approx(3 * model.parameters.bank_access_pj)

    def test_remote_accesses_cost_more_interconnect_energy(self):
        cluster, result = self._run_small_program()
        model = EnergyModel(cluster)
        local_only = result.total
        breakdown = model.program_energy(local_only)
        expected = (
            2 * model.local_interconnect_pj() + model.average_remote_interconnect_pj()
        )
        assert breakdown.interconnect_pj == pytest.approx(expected)


class TestPowerModel:
    def _matmul_result(self):
        from repro.kernels import MatmulKernel

        cluster = MemPoolCluster(MemPoolConfig.tiny("toph"))
        kernel = MatmulKernel(cluster, size=8)
        return cluster, kernel.run(verify=False)

    def test_tile_power_breakdown_orders_components_like_the_paper(self):
        cluster, result = self._matmul_result()
        breakdown = PowerModel(cluster).breakdown(result.system)
        assert breakdown.icache_mw > breakdown.cores_mw > breakdown.spm_mw
        assert breakdown.tile_total_mw > 0

    def test_tiles_dominate_cluster_power(self):
        cluster, result = self._matmul_result()
        breakdown = PowerModel(cluster).breakdown(result.system)
        assert breakdown.tiles_fraction == pytest.approx(0.86, abs=0.02)

    def test_component_shares_sum_to_one(self):
        cluster, result = self._matmul_result()
        breakdown = PowerModel(cluster).breakdown(result.system)
        assert sum(share for _, _, share in breakdown.rows()) == pytest.approx(1.0)

    def test_power_scales_with_frequency(self):
        cluster, result = self._matmul_result()
        slow = PowerModel(cluster, frequency_hz=250e6).breakdown(result.system)
        fast = PowerModel(cluster, frequency_hz=500e6).breakdown(result.system)
        assert fast.tile_total_mw > slow.tile_total_mw

    def test_zero_cycle_result_rejected(self):
        cluster, result = self._matmul_result()
        result.system.cycles = 0
        with pytest.raises(ValueError):
            PowerModel(cluster).breakdown(result.system)

    def test_energy_per_instruction_is_reasonable(self):
        cluster, result = self._matmul_result()
        energy = PowerModel(cluster).energy_per_instruction_pj(result.system)
        assert 5.0 < energy < 100.0

    def test_custom_background_parameters(self):
        cluster, result = self._matmul_result()
        quiet = PowerParameters(tile_overhead_mw=0.0)
        breakdown = PowerModel(cluster, power_parameters=quiet).breakdown(result.system)
        assert breakdown.other_mw == 0.0
