"""Tests of the analytical physical models (area, timing, floorplan)."""

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.physical import AreaModel, FloorplanModel, TimingModel
from repro.physical.area import AreaParameters
from repro.physical.timing import (
    CLUSTER_CRITICAL_PATH,
    TILE_CRITICAL_PATH,
    CriticalPath,
    TimingParametersPhysical,
)


@pytest.fixture
def full_cluster():
    return MemPoolCluster(MemPoolConfig.full("toph"))


class TestTileArea:
    def test_tile_macro_matches_the_paper(self, full_cluster):
        tile = AreaModel(full_cluster).tile_breakdown()
        assert tile.macro_side_um == pytest.approx(425, abs=10)
        assert tile.total_kge == pytest.approx(908, rel=0.05)
        assert tile.utilisation == pytest.approx(0.728)

    def test_spm_and_icache_dominate_the_area(self, full_cluster):
        tile = AreaModel(full_cluster).tile_breakdown()
        assert tile.share(tile.spm_um2) == pytest.approx(0.402, abs=0.03)
        assert tile.share(tile.icache_um2) == pytest.approx(0.236, abs=0.03)

    def test_component_shares_sum_to_one(self, full_cluster):
        tile = AreaModel(full_cluster).tile_breakdown()
        assert sum(share for _, _, share in tile.rows()) == pytest.approx(1.0)

    def test_snitch_core_area_follows_its_kge(self, full_cluster):
        parameters = AreaParameters()
        tile = AreaModel(full_cluster, parameters).tile_breakdown()
        expected = 4 * parameters.snitch_core_kge * 1000 * parameters.ge_um2
        assert tile.cores_um2 == pytest.approx(expected)

    def test_top1_tile_interconnect_is_smaller_than_toph(self):
        toph = AreaModel(MemPoolCluster(MemPoolConfig.full("toph"))).tile_breakdown()
        top1 = AreaModel(MemPoolCluster(MemPoolConfig.full("top1"))).tile_breakdown()
        assert top1.interconnect_um2 < toph.interconnect_um2


class TestClusterArea:
    def test_cluster_side_matches_the_paper(self, full_cluster):
        report = AreaModel(full_cluster).cluster_report()
        assert report.cluster_side_mm == pytest.approx(4.6, abs=0.15)
        assert report.tile_coverage == pytest.approx(0.55)

    def test_tiles_area_is_fraction_of_cluster(self, full_cluster):
        report = AreaModel(full_cluster).cluster_report()
        assert report.tiles_um2 / report.cluster_um2 == pytest.approx(report.tile_coverage)

    def test_global_interconnect_area_positive(self, full_cluster):
        report = AreaModel(full_cluster).cluster_report()
        assert report.global_interconnect_um2 > 0


class TestTiming:
    def test_paper_path_shapes(self):
        assert TILE_CRITICAL_PATH.total_gates == 53
        assert CLUSTER_CRITICAL_PATH.total_gates == 36
        assert CLUSTER_CRITICAL_PATH.buffer_gates == 27

    def test_frequencies_match_the_paper(self):
        frequencies = TimingModel().cluster_frequencies()
        assert frequencies["typical"] == pytest.approx(700, abs=25)
        assert frequencies["worst"] == pytest.approx(490, abs=25)

    def test_wire_dominates_the_cluster_path(self):
        model = TimingModel()
        fraction = model.wire_fraction(CLUSTER_CRITICAL_PATH, "worst")
        assert fraction == pytest.approx(0.37, abs=0.05)
        assert model.wire_fraction(TILE_CRITICAL_PATH, "worst") < 0.1

    def test_typical_corner_is_faster_than_worst(self):
        model = TimingModel()
        for path in (TILE_CRITICAL_PATH, CLUSTER_CRITICAL_PATH):
            assert model.frequency_mhz(path, "typical") > model.frequency_mhz(path, "worst")

    def test_unknown_corner_rejected(self):
        with pytest.raises(ValueError):
            TimingModel().path_delay_ns(TILE_CRITICAL_PATH, "nominal")

    def test_buffer_fraction(self):
        path = CriticalPath("p", logic_gates=10, buffer_gates=30, wire_mm=1.0)
        assert path.buffer_fraction == pytest.approx(0.75)

    def test_custom_parameters(self):
        parameters = TimingParametersPhysical(margin_ns=0.5)
        slow = TimingModel(parameters).frequency_mhz(TILE_CRITICAL_PATH, "typical")
        fast = TimingModel().frequency_mhz(TILE_CRITICAL_PATH, "typical")
        assert slow < fast


class TestFloorplan:
    def test_top4_is_infeasible_and_others_are_not(self, full_cluster):
        reports = FloorplanModel(full_cluster).compare_topologies()
        assert not reports["top4"].feasible
        assert reports["top1"].feasible
        assert reports["toph"].feasible

    def test_top4_centre_congestion_is_about_four_times_top1(self, full_cluster):
        reports = FloorplanModel(full_cluster).compare_topologies()
        ratio = reports["top4"].centre_utilisation / reports["top1"].centre_utilisation
        assert 3.5 <= ratio <= 4.5

    def test_toph_spreads_its_wiring(self, full_cluster):
        """TopH uses more total wire but far less of the central channel than Top4."""
        reports = FloorplanModel(full_cluster).compare_topologies()
        assert reports["toph"].centre_utilisation < reports["top4"].centre_utilisation
        assert reports["toph"].total_wire_mm > reports["top1"].total_wire_mm

    def test_tile_positions_are_inside_the_die(self, full_cluster):
        model = FloorplanModel(full_cluster)
        extent = model.grid_side * model.tile_pitch_mm
        for tile in range(full_cluster.config.num_tiles):
            x, y = model.tile_position_mm(tile)
            assert 0 <= x <= extent
            assert 0 <= y <= extent

    def test_groups_form_quadrants(self, full_cluster):
        model = FloorplanModel(full_cluster)
        centres = [model._group_centre_mm(group) for group in range(4)]
        xs = sorted({round(x, 3) for x, _ in centres})
        ys = sorted({round(y, 3) for _, y in centres})
        assert len(xs) == 2 and len(ys) == 2

    def test_all_tiles_have_unique_positions(self, full_cluster):
        model = FloorplanModel(full_cluster)
        positions = {
            model.tile_position_mm(tile) for tile in range(full_cluster.config.num_tiles)
        }
        assert len(positions) == full_cluster.config.num_tiles
