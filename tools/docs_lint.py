#!/usr/bin/env python
"""Docs linter: docstring coverage + registry-generated catalogue tables.

Two independent checks, selectable from the command line:

**Docstring coverage** (the default, over the paths given): an offline
stand-in for ``pydocstyle`` / ``ruff --select D1`` — the container this
repo builds in has neither, so the Makefile's ``docs-lint`` target falls
back to this checker.  It enforces the missing-docstring subset
(D100/D101/D102/D103/D104):

* every module and package ``__init__`` needs a module docstring;
* every public class, function and method (name not starting with ``_``)
  needs a docstring;
* nested (function-local) definitions and ``__dunder__`` methods other
  than ``__init__``-free classes are exempt.

**Generated catalogue tables** (``--tables``): the workload and topology
tables of README.md and docs/architecture.md live between
``<!-- BEGIN GENERATED: name -->`` / ``<!-- END GENERATED: name -->``
markers and are rendered from the live registries
(:mod:`repro.workloads.registry`, :mod:`repro.topologies.registry`).
``--tables`` fails when a file's table drifts from its registry — e.g. a
pattern was registered without regenerating the docs — and
``--tables --write`` rewrites the regions in place.  Deleting the
markers does not silence the check: every known region must appear in at
least one documentation file.

Usage::

    python tools/docs_lint.py src/repro/experiments src/repro/evaluation
    python tools/docs_lint.py --tables            # check docs vs registries
    python tools/docs_lint.py --tables --write    # regenerate the tables
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documentation files that may carry generated regions.
TABLE_FILES = ("README.md", "docs/architecture.md")

_BEGIN = "<!-- BEGIN GENERATED: {name} -->"
_END = "<!-- END GENERATED: {name} -->"
_REGION = re.compile(
    r"<!-- BEGIN GENERATED: (?P<name>[\w-]+) -->\n"
    r"(?P<body>.*?)"
    r"<!-- END GENERATED: (?P=name) -->",
    re.DOTALL,
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_body(
    body: list[ast.stmt], prefix: str, violations: list[str], path: Path
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                violations.append(
                    f"{path}:{node.lineno}: missing docstring on "
                    f"function {prefix}{node.name}"
                )
        elif isinstance(node, ast.ClassDef):
            if _is_public(node.name):
                if ast.get_docstring(node) is None:
                    violations.append(
                        f"{path}:{node.lineno}: missing docstring on "
                        f"class {prefix}{node.name}"
                    )
                _check_body(
                    node.body, f"{prefix}{node.name}.", violations, path
                )


def check_file(path: Path) -> list[str]:
    """Return the docstring violations of one Python source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations: list[str] = []
    docstring = ast.get_docstring(tree)
    if docstring is None or not docstring.strip():
        violations.append(f"{path}:1: missing module docstring")
    _check_body(tree.body, "", violations, path)
    return violations


# --------------------------------------------------------------------------- #
# Registry-generated catalogue tables
# --------------------------------------------------------------------------- #


def _markdown_table(headers: tuple[str, ...], rows: list[tuple[str, ...]]) -> str:
    """Render one GitHub-flavoured markdown table (trailing newline)."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in rows)
    return "\n".join(lines) + "\n"


def _knob_cell(entry) -> str:
    """The knobs column of one registry entry: sorted, required-annotated."""
    names = sorted(entry.params)
    if not names:
        return "—"
    required = set(getattr(entry, "required", ()))
    return ", ".join(
        f"`{name}`" + (" (required)" if name in required else "")
        for name in names
    )


def _table_workload_patterns() -> str:
    from repro.workloads import pattern_catalogue

    return _markdown_table(
        ("pattern", "destination semantics", "knobs"),
        [
            (f"`{entry.name}`", entry.summary, _knob_cell(entry))
            for entry in pattern_catalogue()
        ],
    )


def _table_workload_injectors() -> str:
    from repro.workloads import injector_catalogue

    return _markdown_table(
        ("injector", "arrival process per core", "knobs"),
        [
            (f"`{entry.name}`", entry.summary, _knob_cell(entry))
            for entry in injector_catalogue()
        ],
    )


def _table_topologies() -> str:
    from repro.topologies import topology_catalogue

    return _markdown_table(
        ("topology", "structure", "remote zero-load round trip", "knobs"),
        [
            (f"`{entry.name}`", entry.summary, entry.round_trip, _knob_cell(entry))
            for entry in topology_catalogue()
        ],
    )


def _table_experiments() -> str:
    from repro.experiments.registry import EXPERIMENTS

    return _markdown_table(
        ("experiment", "reproduces"),
        [
            (f"`{name}`", definition.title)
            for name, definition in EXPERIMENTS.items()
        ],
    )


#: Region name -> renderer of the table body between its markers.
GENERATED_TABLES = {
    "workload-patterns": _table_workload_patterns,
    "workload-injectors": _table_workload_injectors,
    "topology-families": _table_topologies,
    "experiments": _table_experiments,
}


def check_tables(write: bool = False, root: Path = REPO_ROOT) -> list[str]:
    """Compare (or ``--write``: regenerate) every generated docs region.

    Returns the violations: drifted regions, regions naming an unknown
    table, and known tables with no region anywhere — each message says
    how to fix it (``--tables --write`` regenerates in place).
    """
    source_root = root / "src"
    if str(source_root) not in sys.path:
        sys.path.insert(0, str(source_root))
    violations: list[str] = []
    seen: set[str] = set()
    for relative in TABLE_FILES:
        path = root / relative
        if not path.exists():
            violations.append(f"{relative}: missing documentation file")
            continue
        text = path.read_text(encoding="utf-8")
        rewritten = text
        for match in _REGION.finditer(text):
            name = match.group("name")
            renderer = GENERATED_TABLES.get(name)
            if renderer is None:
                violations.append(
                    f"{relative}: unknown generated region {name!r}; known: "
                    f"{', '.join(sorted(GENERATED_TABLES))}"
                )
                continue
            seen.add(name)
            expected = _BEGIN.format(name=name) + "\n" + renderer() + _END.format(
                name=name
            )
            if match.group(0) != expected:
                if write:
                    rewritten = rewritten.replace(match.group(0), expected)
                else:
                    violations.append(
                        f"{relative}: generated table {name!r} is out of date "
                        "with its registry; run `python tools/docs_lint.py "
                        "--tables --write` and commit the result"
                    )
        if write and rewritten != text:
            path.write_text(rewritten, encoding="utf-8")
            print(f"docs-lint: rewrote generated tables in {relative}")
    for name in sorted(set(GENERATED_TABLES) - seen):
        violations.append(
            f"generated table {name!r} has no "
            f"{_BEGIN.format(name=name)} region in any of: "
            f"{', '.join(TABLE_FILES)}"
        )
    return violations


def main(argv: list[str]) -> int:
    """Lint every ``.py`` file under the given paths; return an exit code."""
    write = "--write" in argv
    tables = "--tables" in argv
    argv = [argument for argument in argv if argument not in ("--tables", "--write")]
    if tables:
        violations = check_tables(write=write)
        for violation in violations:
            print(violation)
        if violations:
            print(f"docs-lint: {len(violations)} table violation(s)")
            return 1
        if not argv:
            print(f"docs-lint: OK ({len(GENERATED_TABLES)} generated tables in sync)")
            return 0
    if not argv:
        print("usage: docs_lint.py [--tables [--write]] PATH [PATH ...]",
              file=sys.stderr)
        return 2
    files: list[Path] = []
    for argument in argv:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations: list[str] = []
    for file in files:
        violations.extend(check_file(file))
    for violation in violations:
        print(violation)
    if violations:
        print(f"docs-lint: {len(violations)} violation(s) in {len(files)} file(s)")
        return 1
    print(f"docs-lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
