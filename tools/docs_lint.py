#!/usr/bin/env python
"""Fail when public modules, classes or functions lack docstrings.

An offline stand-in for ``pydocstyle`` / ``ruff --select D1``: the container
this repo builds in has neither, so the Makefile's ``docs-lint`` target
falls back to this checker.  It enforces the missing-docstring subset
(D100/D101/D102/D103/D104) over the paths given on the command line:

* every module and package ``__init__`` needs a module docstring;
* every public class, function and method (name not starting with ``_``)
  needs a docstring;
* nested (function-local) definitions and ``__dunder__`` methods other
  than ``__init__``-free classes are exempt.

Usage::

    python tools/docs_lint.py src/repro/experiments src/repro/evaluation
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_body(
    body: list[ast.stmt], prefix: str, violations: list[str], path: Path
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name) and ast.get_docstring(node) is None:
                violations.append(
                    f"{path}:{node.lineno}: missing docstring on "
                    f"function {prefix}{node.name}"
                )
        elif isinstance(node, ast.ClassDef):
            if _is_public(node.name):
                if ast.get_docstring(node) is None:
                    violations.append(
                        f"{path}:{node.lineno}: missing docstring on "
                        f"class {prefix}{node.name}"
                    )
                _check_body(
                    node.body, f"{prefix}{node.name}.", violations, path
                )


def check_file(path: Path) -> list[str]:
    """Return the docstring violations of one Python source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    violations: list[str] = []
    docstring = ast.get_docstring(tree)
    if docstring is None or not docstring.strip():
        violations.append(f"{path}:1: missing module docstring")
    _check_body(tree.body, "", violations, path)
    return violations


def main(argv: list[str]) -> int:
    """Lint every ``.py`` file under the given paths; return an exit code."""
    if not argv:
        print("usage: docs_lint.py PATH [PATH ...]", file=sys.stderr)
        return 2
    files: list[Path] = []
    for argument in argv:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations: list[str] = []
    for file in files:
        violations.extend(check_file(file))
    for violation in violations:
        print(violation)
    if violations:
        print(f"docs-lint: {len(violations)} violation(s) in {len(files)} file(s)")
        return 1
    print(f"docs-lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
