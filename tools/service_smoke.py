"""End-to-end smoke of the sweep service (`make service-smoke`).

Boots ``python -m repro.experiments serve`` on an ephemeral port with a
throwaway disk cache, then proves the full HTTP path against a direct
in-process run:

1. submit the fig5 smoke sweep over ``POST /sweeps``;
2. consume the NDJSON event stream to completion;
3. fetch every result by content hash from ``GET /results/{key}`` and
   **byte-compare** each pickle against a direct
   :class:`~repro.experiments.executor.Executor` run of the same specs;
4. resubmit the identical sweep and assert it is served from the cache —
   zero recomputed points, every point a cache hit.

The server runs with ``--ttl 0`` so the resubmission exercises the
cache-hit path as a *fresh* job (the finished job is pruned immediately)
rather than the in-registry dedup path, which the unit tests cover.
Exits non-zero with a diagnostic on any mismatch.
"""

from __future__ import annotations

import pickle
import re
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evaluation.settings import ExperimentSettings  # noqa: E402
from repro.experiments.executor import Executor  # noqa: E402
from repro.experiments.registry import EXPERIMENTS  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402

SMOKE_SETTINGS = {"engine": "vector", "warmup_cycles": 20, "measure_cycles": 60}
SUBMISSION = {"experiment": "fig5", "settings": SMOKE_SETTINGS}


def fail(message: str) -> None:
    """Print a diagnostic and exit non-zero."""
    print(f"service-smoke: FAIL: {message}")
    raise SystemExit(1)


def start_server(cache_dir: str) -> tuple[subprocess.Popen, int]:
    """Launch the serve subcommand on an ephemeral port; return (proc, port)."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments", "serve",
            "--port", "0", "--cache", f"disk:{cache_dir}", "--ttl", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if not match:
        process.kill()
        fail(f"server did not announce a port: {line!r}")
    return process, int(match.group(1))


def main() -> int:
    """Run the smoke; returns 0 on success."""
    specs = EXPERIMENTS["fig5"].build_sweep(
        ExperimentSettings(**SMOKE_SETTINGS)
    ).specs()
    print(f"service-smoke: direct run of {len(specs)} fig5 points ...")
    direct = Executor().run(specs)
    direct_blobs = [
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        for value in direct
    ]

    with tempfile.TemporaryDirectory(prefix="service-smoke-") as cache_dir:
        process, port = start_server(cache_dir)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=60.0)
            if client.healthz()["status"] != "ok":
                fail("healthz did not answer ok")

            print(f"service-smoke: server on port {port}; submitting sweep")
            reply = client.submit(SUBMISSION)
            if reply["deduplicated"]:
                fail("first submission claimed to be a duplicate")
            job_id = reply["job"]["id"]

            events = list(client.events(job_id))
            kinds = [event["kind"] for event in events]
            states = [e["state"] for e in events if e["kind"] == "state"]
            print(
                f"service-smoke: streamed {len(events)} events "
                f"({kinds.count('point')} points), states {states}"
            )
            if states[-1] != "done":
                fail(f"job ended {states[-1]!r}: {client.job(job_id)}")
            if kinds.count("point") != len(specs):
                fail(
                    f"stream reported {kinds.count('point')} points, "
                    f"expected {len(specs)}"
                )

            job = client.job(job_id)
            if job["computed"] != len(specs) or job["cache_hits"] != 0:
                fail(f"cold job miscounted: {job}")
            if job["result_keys"] != [spec.key for spec in specs]:
                fail("service result keys differ from local spec keys")
            for index, key in enumerate(job["result_keys"]):
                blob = client.result(key)
                if blob != direct_blobs[index]:
                    fail(
                        f"result {index} ({key[:12]}...) differs from the "
                        f"direct Executor run"
                    )
            print(
                f"service-smoke: {len(specs)} results byte-identical to the "
                f"direct run"
            )

            # --ttl 0 pruned the finished job, so this resubmission must
            # become a fresh job served entirely from the disk cache.
            second = client.submit(SUBMISSION)
            if second["deduplicated"]:
                fail("resubmission hit the registry, not the cache path")
            warm = client.wait(second["job"]["id"], timeout_s=60)
            if warm["state"] != "done":
                fail(f"warm job ended {warm['state']!r}")
            if warm["computed"] != 0 or warm["cache_hits"] != len(specs):
                fail(f"resubmission recomputed points: {warm}")
            warm_events = list(client.events(warm["id"]))
            if any(event["kind"] == "point" for event in warm_events):
                fail("warm job emitted point events (it recomputed)")
            print(
                f"service-smoke: resubmission served from cache "
                f"({warm['cache_hits']} hits, 0 computed)"
            )
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
    print("service-smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
