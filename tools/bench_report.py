#!/usr/bin/env python
"""Diff the current engine benchmarks against the committed baseline.

``benchmarks/test_perf_engine.py`` writes ``benchmarks/BENCH_engine.json``
with the measured legacy-vs-vector transport speedup, and
``benchmarks/test_perf_batch.py`` merges the SimBatch-vs-sequential sweep
speedup into the same file; ``benchmarks/BENCH_engine.baseline.json`` is
the committed reference.  This tool compares the two and fails (exit code
1) when either measured *speedup* regressed by more than the threshold
(default 20 %).

The comparison is on the speedup ratio, not on raw cycles/sec: absolute
throughput varies with the host machine, but the legacy engine runs on the
same machine in the same process, so the ratio is the portable signal.
Raw cycles/sec of both engines are reported for context.

A missing current-results file is not an error — the benchmark simply has
not run yet — so the Makefile can wire this report into the ``test`` flow
as a non-fatal step::

    python tools/bench_report.py                # report + regression gate
    python tools/bench_report.py --threshold 0.1
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
#: Current results follow ``BENCH_OUT_DIR`` (where the benchmark modules
#: write when the variable is set, keeping local re-runs out of the
#: committed snapshots); baselines always come from the committed tree.
CURRENT_DIR = Path(os.environ.get("BENCH_OUT_DIR") or BENCH_DIR)
DEFAULT_CURRENT = CURRENT_DIR / "BENCH_engine.json"
DEFAULT_BASELINE = BENCH_DIR / "BENCH_engine.baseline.json"
EXPERIMENTS_CURRENT = CURRENT_DIR / "BENCH_experiments.json"
EXPERIMENTS_BASELINE = BENCH_DIR / "BENCH_experiments.baseline.json"


def load_result(path: Path) -> dict | None:
    """Load one benchmark JSON file, or None when it does not exist."""
    if not path.exists():
        return None
    return json.loads(path.read_text())


def compare(current: dict, baseline: dict, threshold: float) -> tuple[bool, str]:
    """Compare two benchmark results.

    Returns ``(ok, report)`` where ``ok`` is False when the current
    speedup fell more than ``threshold`` (a fraction) below the baseline.
    """
    current_speedup = current["speedup"]
    baseline_speedup = baseline["speedup"]
    floor = baseline_speedup * (1.0 - threshold)
    ok = current_speedup >= floor
    lines = [
        f"engine benchmark: {current.get('benchmark', 'unknown workload')}",
        f"  advance speedup : {current_speedup:.2f}x "
        f"(baseline {baseline_speedup:.2f}x, regression floor {floor:.2f}x)",
        f"  end-to-end      : {current.get('end_to_end_speedup', 0):.2f}x "
        f"(baseline {baseline.get('end_to_end_speedup', 0):.2f}x)",
    ]
    for engine in ("legacy", "vector"):
        cur = current.get(engine, {})
        base = baseline.get(engine, {})
        lines.append(
            f"  {engine:<6} advance : "
            f"{cur.get('advance_cycles_per_sec', 0):>8} cycles/s "
            f"(baseline {base.get('advance_cycles_per_sec', 0)}; "
            "machine-dependent, informational)"
        )
    lines.append(
        "  verdict         : "
        + ("OK" if ok else f"REGRESSION (> {threshold:.0%} below baseline)")
    )
    return ok, "\n".join(lines)


def batch_report(
    current: dict, baseline: dict | None, threshold: float
) -> tuple[bool, str] | None:
    """SimBatch-vs-sequential report and gate, or None when never benchmarked.

    ``benchmarks/test_perf_batch.py`` merges a ``"batch"`` section into the
    current results file; like the engine comparison, the gated signal is
    the *speedup ratio* (sequential vector runs execute on the same host in
    the same process), compared against the committed baseline's batch
    speedup when one exists.
    """
    section = current.get("batch")
    if not section:
        return None
    speedup = section.get("speedup", 0.0)
    lines = [
        f"batch benchmark : {section.get('benchmark', 'sweep batching')}",
        f"  sweep speedup   : {speedup:.2f}x over sequential vector "
        f"({section.get('sequential_seconds', 0)}s -> "
        f"{section.get('batch_seconds', 0)}s, "
        f"{section.get('points', 0)} points)",
    ]
    ok = True
    base_section = (baseline or {}).get("batch")
    if base_section and base_section.get("speedup"):
        base_speedup = base_section["speedup"]
        floor = base_speedup * (1.0 - threshold)
        ok = speedup >= floor
        lines.append(
            "  verdict         : "
            + (
                f"OK (baseline {base_speedup:.2f}x, floor {floor:.2f}x)"
                if ok
                else f"REGRESSION (> {threshold:.0%} below baseline "
                f"{base_speedup:.2f}x)"
            )
        )
    else:
        lines.append("  verdict         : no committed batch baseline (informational)")
    return ok, "\n".join(lines)


def compiled_report(
    current: dict, baseline: dict | None, threshold: float
) -> tuple[bool, str] | None:
    """Compiled-kernel-vs-vector report and gate, or None when never run.

    ``benchmarks/test_perf_engine.py`` merges a ``"compiled"`` section into
    the current results file with the compiled engine's advance speedup
    over the vector engine and a ``jit`` flag recording whether the numba
    backend was active.  The gate is **jit-mode aware**: the speedup ratio
    is only compared against the committed baseline when both runs used
    the same kernel backend — a pure-Python fallback run (numba absent or
    ``MEMPOOL_JIT=0``) is legitimately far slower than a JIT run and must
    never be gated against a JIT baseline, or vice versa.
    """
    section = current.get("compiled")
    if not section:
        return None
    speedup = section.get("speedup_vs_vector", 0.0)
    jit = bool(section.get("jit"))
    mode = "numba JIT" if jit else "pure-Python kernels"
    lines = [
        f"compiled benchmark: {section.get('benchmark', 'kernel engine')}",
        f"  advance speedup : {speedup:.2f}x over vector ({mode})",
    ]
    ok = True
    base_section = (baseline or {}).get("compiled")
    if base_section and base_section.get("speedup_vs_vector") is not None:
        if bool(base_section.get("jit")) != jit:
            base_mode = "numba JIT" if base_section.get("jit") else "pure-Python"
            lines.append(
                f"  verdict         : jit mode differs from baseline "
                f"({base_mode}) — not comparable, informational"
            )
        else:
            base_speedup = base_section["speedup_vs_vector"]
            floor = base_speedup * (1.0 - threshold)
            ok = speedup >= floor
            lines.append(
                "  verdict         : "
                + (
                    f"OK (baseline {base_speedup:.2f}x, floor {floor:.2f}x)"
                    if ok
                    else f"REGRESSION (> {threshold:.0%} below baseline "
                    f"{base_speedup:.2f}x)"
                )
            )
    else:
        lines.append(
            "  verdict         : no committed compiled baseline (informational)"
        )
    return ok, "\n".join(lines)


def topologies_report(
    current: dict, baseline: dict | None, threshold: float
) -> tuple[bool, str] | None:
    """Per-topology engine-speedup report and gate, or None when never run.

    ``benchmarks/test_perf_topologies.py`` merges a ``"topologies"``
    section into the current results file (one entry per gated family,
    e.g. mesh and torus).  Like the engine comparison, the gated signal is
    each family's legacy-vs-vector advance *speedup ratio*, compared
    against the committed baseline's entry for the same family when one
    exists; families without a baseline entry are informational.
    """
    section = current.get("topologies")
    if not section:
        return None
    base_section = (baseline or {}).get("topologies") or {}
    lines = [f"topology benchmark: {section.get('benchmark', 'topology sweep')}"]
    ok = True
    for name in sorted(section):
        if name == "benchmark":
            continue
        entry = section[name]
        speedup = entry.get("speedup", 0.0)
        detail = (
            f"  {name:<8} advance : {speedup:.2f}x vector speedup "
            f"(compile {entry.get('compile_seconds', 0)}s)"
        )
        base_entry = base_section.get(name)
        if base_entry and base_entry.get("speedup"):
            base_speedup = base_entry["speedup"]
            floor = base_speedup * (1.0 - threshold)
            entry_ok = speedup >= floor
            ok = ok and entry_ok
            detail += (
                f" — {'OK' if entry_ok else 'REGRESSION'} "
                f"(baseline {base_speedup:.2f}x, floor {floor:.2f}x)"
            )
        else:
            detail += " — no committed baseline (informational)"
        lines.append(detail)
    return ok, "\n".join(lines)


def distributed_report(
    current: dict | None, baseline: dict | None, threshold: float
) -> tuple[bool, str] | None:
    """Distributed-scaling report and gate, or None when never benchmarked.

    ``benchmarks/test_perf_distributed.py`` writes a ``"distributed"``
    section into ``benchmarks/BENCH_experiments.json`` with the
    4-local-workers-vs-1 wall-clock ratio of a cold-cache sweep and the
    core count it was measured on.  The gate is **cpu-aware** (the same
    pattern as the jit-aware compiled gate): parallel speedup is bounded
    by the host's core count, so the ratio is only compared against the
    committed baseline when both runs had the same number of cpus — a
    1-core smoke container legitimately measures ~1x and must never be
    gated against a 4-core baseline, or vice versa.
    """
    section = (current or {}).get("distributed")
    if not section:
        return None
    speedup = section.get("speedup_4v1", 0.0)
    cpus = section.get("cpus", 0)
    workers = section.get("workers", 4)
    lines = [
        f"distributed benchmark: {section.get('benchmark', 'scaling sweep')}",
        f"  fleet speedup   : {speedup:.2f}x on {workers} workers / {cpus} cpus "
        f"({section.get('serial_seconds', 0)}s -> "
        f"{section.get('fleet_seconds', 0)}s, "
        f"{section.get('points', 0)} points)",
    ]
    ok = True
    base_section = (baseline or {}).get("distributed")
    if base_section and base_section.get("speedup_4v1"):
        if base_section.get("cpus") != cpus:
            lines.append(
                f"  verdict         : cpu count differs from baseline "
                f"({base_section.get('cpus')} cpus) — not comparable, "
                "informational"
            )
        else:
            base_speedup = base_section["speedup_4v1"]
            floor = base_speedup * (1.0 - threshold)
            ok = speedup >= floor
            lines.append(
                "  verdict         : "
                + (
                    f"OK (baseline {base_speedup:.2f}x, floor {floor:.2f}x)"
                    if ok
                    else f"REGRESSION (> {threshold:.0%} below baseline "
                    f"{base_speedup:.2f}x)"
                )
            )
    else:
        lines.append(
            "  verdict         : no committed distributed baseline (informational)"
        )
    return ok, "\n".join(lines)


def workloads_report(current: dict) -> str | None:
    """Per-pattern dispatch-overhead report, or None when never benchmarked.

    ``benchmarks/test_perf_workloads.py`` appends a ``"workloads"`` section
    to the current results file; this prints each pattern's simulated
    cycles/sec relative to the ``uniform`` pattern on the same host (the
    machine-portable signal).  Informational: pattern cost legitimately
    varies with the congestion each pattern creates, so there is no
    regression gate here — the gate is the engine speedup above.
    """
    section = current.get("workloads")
    if not section:
        return None
    patterns = section.get("patterns", {})
    if not patterns:
        return None
    uniform = patterns.get("uniform", {}).get("cycles_per_sec", 0)
    lines = [f"workload benchmark: {section.get('benchmark', 'pattern sweep')}"]
    for name in sorted(patterns):
        metrics = patterns[name]
        rate = metrics.get("cycles_per_sec", 0)
        relative = f"{rate / uniform:5.2f}x uniform" if uniform else "     n/a"
        lines.append(
            f"  {name:<16}: {rate:>8} cycles/s ({relative}, "
            f"throughput {metrics.get('throughput', 0):.3f})"
        )
    return "\n".join(lines)


def validation_report(report_path: Path) -> str | None:
    """Summary of the last golden-band validation run, or None when absent.

    ``python -m repro.experiments validate`` (``make validate``) writes
    ``benchmarks/VALIDATION_report.json``; this section surfaces its
    verdict next to the perf numbers.  Informational here: the validate
    command itself is the gate (it exits 1 on a reject verdict), this
    report never re-fails an already-gated run.
    """
    document = load_result(report_path)
    if document is None:
        return None
    rows = document.get("rows", [])
    flagged = [row for row in rows if row.get("severity") != "ok"]
    lines = [
        f"golden validation : {len(rows)} metric rows, "
        f"worst severity {document.get('worst', '?').upper()}, "
        f"verdict {document.get('verdict', '?')}"
    ]
    for row in flagged:
        lines.append(
            f"  {row['case']:<24} {row['metric']:<16} "
            f"deviation {100.0 * row['deviation']:.2f}% "
            f"-> {row['severity'].upper()} ({row['action']})"
        )
    if not flagged:
        lines.append("  every metric matches its committed golden exactly")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", type=Path, default=DEFAULT_CURRENT,
        help=f"current results (default: {DEFAULT_CURRENT})",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="allowed fractional speedup regression (default: 0.2)",
    )
    args = parser.parse_args(argv)

    current = load_result(args.current)
    if current is None:
        print(
            f"bench_report: no current results at {args.current} "
            "(run `make bench-engine` to produce them); nothing to compare"
        )
        return 0
    baseline = load_result(args.baseline)
    if baseline is None:
        print(f"bench_report: no committed baseline at {args.baseline}")
        return 1
    if "speedup" in current:
        ok, report = compare(current, baseline, args.threshold)
        print(report)
    else:
        # Only the secondary sweeps have run so far; nothing to gate on.
        ok = True
        print(
            "bench_report: current results carry no engine speedup yet "
            "(run `make bench-engine` for the legacy-vs-vector comparison)"
        )
    batch = batch_report(current, baseline, args.threshold)
    if batch:
        batch_ok, report = batch
        ok = ok and batch_ok
        print(report)
    compiled = compiled_report(current, baseline, args.threshold)
    if compiled:
        compiled_ok, report = compiled
        ok = ok and compiled_ok
        print(report)
    topologies = topologies_report(current, baseline, args.threshold)
    if topologies:
        topologies_ok, report = topologies
        ok = ok and topologies_ok
        print(report)
    workloads = workloads_report(current)
    if workloads:
        print(workloads)
    distributed = distributed_report(
        load_result(EXPERIMENTS_CURRENT),
        load_result(EXPERIMENTS_BASELINE),
        args.threshold,
    )
    if distributed:
        distributed_ok, report = distributed
        ok = ok and distributed_ok
        print(report)
    validation = validation_report(BENCH_DIR / "VALIDATION_report.json")
    if validation:
        print(validation)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
