"""Shared configuration of the benchmark harness.

Each benchmark module regenerates one figure or table of the paper: it runs
the corresponding experiment driver, prints the same rows/series the paper
reports, and asserts the qualitative claims (who wins, approximate ratios,
crossover points).  ``pytest-benchmark`` records how long regenerating each
experiment takes.

By default the harness uses the scaled 64-core cluster; set ``MEMPOOL_FULL=1``
to run the full 256-core configuration of the paper (slower).
"""

from __future__ import annotations

import pytest

from repro.evaluation import ExperimentSettings


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment: marks a benchmark that regenerates a paper figure/table"
    )


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Experiment settings shared by every benchmark (honours MEMPOOL_FULL)."""
    return ExperimentSettings()


@pytest.fixture(scope="session")
def report_sink():
    """Collects the textual reports so they are printed once at the end."""
    reports: list[str] = []
    yield reports
    if reports:
        print("\n\n" + "\n\n".join(reports))
