"""Figure 7: matmul / 2dconv / dct on every topology, with and without scrambling.

Regenerates the relative-performance bars of Figure 7 (normalised to the
ideal-crossbar baselines TopX / TopXS) and checks the paper's claims:

* every kernel result is functionally correct;
* TopH stays within ~20-30 % of the ideal baseline, even on matmul;
* Top4/TopH clearly outperform Top1 on the remote-heavy matmul;
* the scrambling logic speeds up the kernels that use local data (2dconv,
  dct), and with it all topologies perform nearly identically on dct.
"""

import pytest

from repro.evaluation.fig7 import run_fig7


@pytest.mark.experiment
def test_fig7_kernel_performance(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        lambda: run_fig7(settings, verify=True), rounds=1, iterations=1
    )
    report_sink.append(result.report())

    # Functional correctness of every (kernel, topology, scrambling) run.
    assert result.all_correct()

    # The ideal baseline is never slower than a real topology.
    for kernel in ("matmul", "2dconv", "dct"):
        for topology in ("top1", "top4", "toph"):
            for scrambling in (False, True):
                assert result.relative_performance(kernel, topology, scrambling) <= 1.01

    # TopH stays close to the ideal baseline (paper: >= 80 %, allow 70 % at
    # the scaled cluster size).
    for kernel in ("matmul", "2dconv", "dct"):
        assert result.relative_performance(kernel, "toph", True) >= 0.70

    # With scrambling and purely local data, dct matches the baseline.
    assert result.relative_performance("dct", "toph", True) >= 0.95

    # matmul is dominated by remote accesses: TopH/Top4 beat Top1 clearly.
    assert result.speedup_over_top1("matmul", "toph", True) > 1.5
    assert result.speedup_over_top1("matmul", "top4", True) > 1.5

    # The scrambling logic helps the kernels with tile-local data.
    assert result.scrambling_gain("dct", "top1") > 1.05
    assert result.scrambling_gain("2dconv", "toph") > 1.02

    # With scrambling, the three topologies perform nearly identically on dct.
    dct_cycles = [result.cycles[("dct", topology, True)] for topology in ("top1", "top4", "toph")]
    assert max(dct_cycles) / min(dct_cycles) < 1.10
