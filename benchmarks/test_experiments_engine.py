"""Benchmarks of the experiment-orchestration engine on the fig7 sweep.

Measures the engine itself rather than a figure: that a multi-process
executor produces bit-identical results to the serial path, and that a
warm result cache answers a full sweep without touching the simulator.
On multi-core machines ``workers=cpu_count`` also yields a wall-clock
speedup on the 24-point fig7 grid; the assertion here is only on result
equality so the harness stays green on single-core CI boxes.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.evaluation.fig7 import assemble_fig7, fig7_sweep
from repro.experiments import Executor, ResultCache


@pytest.mark.experiment
def test_parallel_engine_matches_serial(benchmark, settings, report_sink):
    sweep = fig7_sweep(settings, kernels=("dct",))
    specs = sweep.specs()

    serial = Executor(workers=1).run(specs)
    workers = max(2, multiprocessing.cpu_count())
    executor = Executor(workers=workers)
    parallel = benchmark.pedantic(
        lambda: executor.run(specs), rounds=1, iterations=1
    )

    assert assemble_fig7(specs, serial).cycles == assemble_fig7(specs, parallel).cycles
    report_sink.append(
        f"experiments engine (fig7/dct, {len(specs)} points): "
        f"parallel x{workers} matches serial; {executor.last_report.summary()}"
    )


@pytest.mark.experiment
def test_warm_cache_serves_the_sweep_instantly(tmp_path, settings, report_sink):
    sweep = fig7_sweep(settings, kernels=("dct",))
    specs = sweep.specs()
    executor = Executor(workers=1, cache=ResultCache(tmp_path))

    cold_results = executor.run(specs)
    cold = executor.last_report.elapsed_s
    assert executor.last_report.computed == len(specs)

    started = time.perf_counter()
    warm_results = executor.run(specs)
    warm = time.perf_counter() - started
    assert executor.last_report.cache_hits == len(specs)
    assert [r.cycles for r in warm_results] == [r.cycles for r in cold_results]
    # The warm run deserialises a handful of pickles; "near-instant"
    # compared to the seconds of simulation behind the cold run.
    assert warm < max(1.0, cold / 10)
    report_sink.append(
        f"experiments cache (fig7/dct): cold {cold:.2f} s -> warm {warm:.3f} s"
    )
