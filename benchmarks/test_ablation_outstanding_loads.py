"""Ablation: number of outstanding loads supported by the Snitch cores.

Section III-B: *"Snitch supports a configurable number of outstanding load
instructions, which is useful to hide the SPM access latency."*  This
ablation runs the remote-heavy matmul kernel with 1, 2, 4 and 8 outstanding
loads and shows that the latency-hiding capability is what makes the 5-cycle
shared-L1 latency affordable: with a single outstanding load the runtime
grows substantially, while the paper's configuration (8) saturates the
benefit.
"""

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import TimingParameters
from repro.kernels import MatmulKernel
from repro.utils.tables import format_table

OUTSTANDING = (1, 2, 4, 8)


def _matmul_cycles(settings, outstanding: int) -> int:
    timing = TimingParameters(max_outstanding_loads=outstanding)
    config = settings.config("toph", timing=timing)
    cluster = MemPoolCluster(config)
    kernel = MatmulKernel(cluster, size=settings.matmul_size, seed=settings.seed)
    return kernel.run(verify=False).cycles


@pytest.mark.experiment
def test_ablation_outstanding_loads(benchmark, settings, report_sink):
    cycles = benchmark.pedantic(
        lambda: {count: _matmul_cycles(settings, count) for count in OUTSTANDING},
        rounds=1,
        iterations=1,
    )
    baseline = cycles[8]
    rows = [[count, cycles[count], cycles[count] / baseline] for count in OUTSTANDING]
    report_sink.append(
        format_table(
            ["outstanding loads", "matmul cycles", "slowdown vs 8"],
            rows,
            title="Ablation: Snitch outstanding-load support (TopH, matmul)",
        )
    )

    # Runtime must decrease monotonically as more loads can be in flight.
    assert cycles[1] > cycles[2] > cycles[4] >= cycles[8]
    # A single outstanding load exposes the full remote latency: at least
    # ~40 % slower than the paper's configuration of 8.
    assert cycles[1] > 1.4 * cycles[8]
