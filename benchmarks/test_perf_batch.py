"""Performance benchmark: SimBatch vs sequential vector sweep execution.

Runs the Figure-5 load sweep — all three topologies of the figure on the
64-core cluster, eleven injected loads each — two ways: sequentially (one
fresh vector-engine cluster and simulation per point, exactly what the
sweep engine does per point today) and batched (one
:class:`repro.engine.batch.TrafficBatch` per topology advancing the whole
load axis in lockstep).  Both produce identical results; the measured
wall-clock ratio is the batching speedup.

The sweep runs at *smoke* windows: short warm-up/measure windows and many
points is exactly the regime the batch engine exists for — figure-grid
regeneration and CI regression sweeps whose wall-clock is dominated by
Python per-point overhead (topology build, path compilation, per-flit
allocation, per-cycle loop entry) rather than steady-state transport.
Both engines run the same windows, so the comparison is apples to apples;
``benchmarks/BENCH_engine.json`` records the windows next to the numbers.

The measured speedup is merged into ``BENCH_engine.json`` under a
``"batch"`` key, reported by ``tools/bench_report.py`` and gated against
the committed baseline by ``make bench-engine`` / the CI bench-smoke job.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.engine.batch import TrafficBatch
from repro.evaluation.fig5 import DEFAULT_LOADS, FIG5_TOPOLOGIES
from repro.traffic.simulation import TrafficSimulation

WARMUP_CYCLES = 20
MEASURE_CYCLES = 60
SEED = 0
#: Timing repetitions; the minimum filters scheduler noise (same policy
#: as ``test_perf_engine``).
REPETITIONS = 3

RESULT_PATH = (
    Path(os.environ.get("BENCH_OUT_DIR") or Path(__file__).resolve().parent)
    / "BENCH_engine.json"
)
#: Minimum acceptable batch-over-sequential speedup — the ISSUE's ≥2x
#: target, kept as a hard floor below the recorded baseline so the suite
#: stays green on slow, noisy CI boxes while still catching a batch
#: engine that stopped amortising anything.
SPEEDUP_FLOOR = 2.0


def _sequential_sweep() -> tuple[float, list]:
    """One point at a time on fresh vector clusters (today's sweep path)."""
    started = time.perf_counter()
    results = []
    for topology in FIG5_TOPOLOGIES:
        for load in DEFAULT_LOADS:
            cluster = MemPoolCluster(
                MemPoolConfig.scaled(topology), engine="vector"
            )
            simulation = TrafficSimulation(cluster, load, seed=SEED)
            results.append(
                simulation.run(
                    warmup_cycles=WARMUP_CYCLES, measure_cycles=MEASURE_CYCLES
                )
            )
    return time.perf_counter() - started, results


def _batched_sweep() -> tuple[float, list]:
    """One TrafficBatch per topology over the whole load axis."""
    started = time.perf_counter()
    results = []
    for topology in FIG5_TOPOLOGIES:
        cluster = MemPoolCluster(MemPoolConfig.scaled(topology), engine="batch")
        simulations = [
            TrafficSimulation(cluster, load, seed=SEED) for load in DEFAULT_LOADS
        ]
        results.extend(
            TrafficBatch(simulations).run(WARMUP_CYCLES, MEASURE_CYCLES)
        )
    return time.perf_counter() - started, results


def test_batch_speedup_and_append_bench(report_sink):
    # Cycle-exactness gate first: the two execution styles must compute
    # the same sweep, or the timing comparison is meaningless.
    config = MemPoolConfig.scaled("top1")
    vector_log = (
        TrafficSimulation(MemPoolCluster(config, engine="vector"), 0.3, seed=SEED)
        .run(100, 250, record_flits=True)
        .flit_log
    )
    batch_cluster = MemPoolCluster(config, engine="batch")
    batch_log = (
        TrafficBatch([TrafficSimulation(batch_cluster, 0.3, seed=SEED)])
        .run(100, 250, record_flits=True)[0]
        .flit_log
    )
    assert vector_log == batch_log

    sequential_seconds = []
    batch_seconds = []
    for _ in range(REPETITIONS):
        seconds, sequential_results = _sequential_sweep()
        sequential_seconds.append(seconds)
        seconds, batch_results = _batched_sweep()
        batch_seconds.append(seconds)
        assert [r.average_latency for r in sequential_results] == [
            r.average_latency for r in batch_results
        ]
        assert [r.throughput for r in sequential_results] == [
            r.throughput for r in batch_results
        ]

    sequential_best = min(sequential_seconds)
    batch_best = min(batch_seconds)
    speedup = sequential_best / batch_best
    points = len(FIG5_TOPOLOGIES) * len(DEFAULT_LOADS)

    payload = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    payload["batch"] = {
        "benchmark": (
            f"64-core fig5 load sweep ({len(FIG5_TOPOLOGIES)} topologies x "
            f"{len(DEFAULT_LOADS)} loads, {WARMUP_CYCLES}+{MEASURE_CYCLES} "
            "cycles/point, smoke windows)"
        ),
        "points": points,
        "sims_per_group": len(DEFAULT_LOADS),
        "warmup_cycles": WARMUP_CYCLES,
        "measure_cycles": MEASURE_CYCLES,
        "sequential_seconds": round(sequential_best, 4),
        "batch_seconds": round(batch_best, 4),
        "speedup": round(speedup, 2),
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    report_sink.append(
        f"batch benchmark ({payload['batch']['benchmark']}): "
        f"{points} points, sequential {sequential_best:.3f}s -> batched "
        f"{batch_best:.3f}s, speedup {speedup:.2f}x -> {RESULT_PATH.name}"
    )
    assert speedup >= SPEEDUP_FLOOR
