"""Performance benchmark: pattern-dispatch overhead on the vector engine.

Sweeps every registered destination pattern (Poisson injection) through the
64-core Top1 cluster on the vector engine and records simulated cycles per
second of wall time per pattern.  The numbers are merged into
``benchmarks/BENCH_engine.json`` under a ``"workloads"`` key, which
``tools/bench_report.py`` prints next to the legacy-vs-vector engine
comparison — so a pattern whose dispatch path regresses (say, a batched
``destinations`` implementation that falls back to a per-flit Python loop)
shows up in the tracked report rather than silently eating the engine
speedup.

Absolute cycles/sec is machine-dependent; the portable signal is the
*relative* cost of each pattern against ``uniform`` on the same host, which
is also what the report prints.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.traffic.simulation import TrafficSimulation
from repro.workloads import available_patterns
from repro.workloads.registry import pattern_entry

BENCH_TOPOLOGY = "top1"
BENCH_LOAD = 0.25
WARMUP_CYCLES = 100
MEASURE_CYCLES = 500
SEED = 0

RESULT_PATH = (
    Path(os.environ.get("BENCH_OUT_DIR") or Path(__file__).resolve().parent)
    / "BENCH_engine.json"
)


def _time_pattern(pattern: str) -> dict:
    """Run one pattern on the 64-core vector cluster; return its metrics."""
    cluster = MemPoolCluster(MemPoolConfig.scaled(BENCH_TOPOLOGY), engine="vector")
    cluster.network  # build the facade/compile outside the timing
    simulation = TrafficSimulation(cluster, BENCH_LOAD, pattern=pattern, seed=SEED)
    started = time.perf_counter()
    result = simulation.run(
        warmup_cycles=WARMUP_CYCLES, measure_cycles=MEASURE_CYCLES
    )
    elapsed = time.perf_counter() - started
    cycles = WARMUP_CYCLES + MEASURE_CYCLES
    return {
        "seconds": round(elapsed, 4),
        "cycles_per_sec": round(cycles / elapsed),
        "throughput": round(result.throughput, 4),
        "avg_latency": round(result.average_latency, 2),
    }


def test_pattern_sweep_and_append_bench(report_sink):
    # Patterns with required parameters (trace replay needs a path) have
    # no default construction and are benchmarked by their own suites.
    measurements = {
        pattern: _time_pattern(pattern)
        for pattern in available_patterns()
        if not pattern_entry(pattern).required
    }
    # Every registered pattern must actually move traffic through the
    # engine — a pattern that deadlocks or never completes a request
    # would otherwise still "benchmark" fine.
    for pattern, metrics in measurements.items():
        assert metrics["throughput"] > 0.0, pattern
        assert metrics["cycles_per_sec"] > 0, pattern

    payload = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    payload["workloads"] = {
        "benchmark": (
            f"64-core pattern sweep ({BENCH_TOPOLOGY}, vector engine, load "
            f"{BENCH_LOAD}, {WARMUP_CYCLES}+{MEASURE_CYCLES} cycles/pattern, "
            "poisson injection)"
        ),
        "patterns": measurements,
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    uniform = measurements["uniform"]["cycles_per_sec"]
    slowest = min(measurements, key=lambda p: measurements[p]["cycles_per_sec"])
    report_sink.append(
        f"workload benchmark ({payload['workloads']['benchmark']}): "
        f"uniform {uniform} cycles/s, slowest {slowest} "
        f"{measurements[slowest]['cycles_per_sec']} cycles/s "
        f"-> {RESULT_PATH.name}"
    )
