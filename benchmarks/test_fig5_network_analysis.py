"""Figure 5: throughput and latency of Top1 / Top4 / TopH under uniform traffic.

Regenerates both panels of Figure 5 and checks the paper's claims:
Top1 congests around a four-times-lower load than Top4/TopH, and TopH keeps
its average latency in the single digits at a load of 0.33 request/core/cycle.
"""

import pytest

from repro.evaluation.fig5 import run_fig5

#: Injected loads swept by the benchmark (a superset of the paper's key points).
LOADS = (0.05, 0.1, 0.2, 0.3, 0.33, 0.4, 0.5)


@pytest.mark.experiment
def test_fig5_network_analysis(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        lambda: run_fig5(settings, loads=LOADS), rounds=1, iterations=1
    )
    report_sink.append(result.report())

    top1 = result.saturation_throughput("top1")
    top4 = result.saturation_throughput("top4")
    toph = result.saturation_throughput("toph")

    # Figure 5a: Top1 congests early; Top4 and TopH support several times the load.
    assert top1 < 0.2
    assert top4 > 2.5 * top1
    assert toph > 2.5 * top1

    # Figure 5b: at low load the latency sits near the zero-load value and TopH
    # is the lowest thanks to its 3-cycle local group.
    assert result.latency_at("toph", 0.05) < result.latency_at("top4", 0.05)
    assert result.latency_at("toph", 0.05) < 6.0

    # 'The average latency of TopH only reaches 6 cycles at a network load of
    # 0.33 request/core/cycle' — allow some slack for the scaled cluster.
    assert result.latency_at("toph", 0.33) < 9.0

    # Top1's latency must have exploded well before the highest load.
    assert result.latency_at("top1", 0.5) > 3.0 * result.latency_at("toph", 0.33)
