"""Section VI-C: cluster implementation figures (area, frequency, congestion).

Regenerates the cluster-level physical table: a 4.6 mm x 4.6 mm macro with
55 % tile coverage, 700 MHz in typical conditions and ~480-500 MHz in the
worst case, a critical path of 36 gates (27 of them buffers) with ~37 % wire
delay — and the congestion comparison that makes Top4 infeasible while TopH
distributes its wiring.
"""

import pytest

from repro.evaluation.physical_tables import run_physical_tables
from repro.physical.timing import CLUSTER_CRITICAL_PATH


@pytest.mark.experiment
def test_cluster_implementation_table(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        lambda: run_physical_tables(settings), rounds=1, iterations=1
    )
    report_sink.append(result.report())

    assert result.cluster.cluster_side_mm == pytest.approx(4.6, abs=0.2)
    assert result.cluster.tile_coverage == pytest.approx(0.55, abs=0.02)

    # Frequencies: 700 MHz typical, 480 MHz worst case (500 MHz sign-off target).
    assert result.frequencies_mhz["typical"] == pytest.approx(700, abs=30)
    assert result.frequencies_mhz["worst"] == pytest.approx(490, abs=30)

    # Critical-path structure: 36 gates, 27 buffers, ~37 % wire delay.
    assert CLUSTER_CRITICAL_PATH.total_gates == 36
    assert CLUSTER_CRITICAL_PATH.buffer_gates == 27
    assert result.wire_fraction == pytest.approx(0.37, abs=0.05)

    # Congestion: Top4 is ~4x as centre-congested as Top1 and infeasible;
    # Top1 and TopH close timing.
    congestion = result.congestion
    assert not congestion["top4"].feasible
    assert congestion["top1"].feasible and congestion["toph"].feasible
    ratio = congestion["top4"].centre_utilisation / congestion["top1"].centre_utilisation
    assert ratio == pytest.approx(4.0, abs=0.8)
