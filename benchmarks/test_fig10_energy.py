"""Figure 10: energy per instruction of the TopH tile.

Regenerates the per-instruction energy breakdown (core / interconnect /
memory banks) and checks the paper's numbers and ratios.
"""

import pytest

from repro.evaluation.fig10 import run_fig10


@pytest.mark.experiment
def test_fig10_energy_per_instruction(benchmark, settings, report_sink):
    result = benchmark.pedantic(lambda: run_fig10(settings), rounds=1, iterations=1)
    report_sink.append(result.report())

    add = result.entry("add")
    mul = result.entry("mul")
    local = result.entry("local load")
    remote = result.entry("remote load")

    # Absolute values of Figure 10 (pJ).
    assert add.total_pj == pytest.approx(3.7, abs=0.2)
    assert mul.total_pj == pytest.approx(7.0, abs=0.3)
    assert local.total_pj == pytest.approx(8.4, abs=0.5)
    assert remote.total_pj == pytest.approx(16.9, abs=1.5)

    # 'About half of this energy consumption, 4.5 pJ, is spent at the local
    # interconnect.'
    assert local.interconnect_pj == pytest.approx(4.5, abs=0.3)

    # 'Local memory requests consume only half of the energy required for
    # remote memory accesses.'
    assert remote.total_pj / local.total_pj == pytest.approx(2.0, abs=0.3)

    # 'The interconnects consume 13.0 pJ, or 2.9x the energy consumed at the
    # interconnects for a local load.'
    assert remote.interconnect_pj / local.interconnect_pj == pytest.approx(2.9, abs=0.4)

    # 'A local load uses about as much energy as ... mul, or 2.3x ... an add.'
    assert local.total_pj / add.total_pj == pytest.approx(2.3, abs=0.3)

    # 'Remote loads ... only 4.5x the energy of an add.'
    assert remote.total_pj / add.total_pj == pytest.approx(4.5, abs=0.6)
