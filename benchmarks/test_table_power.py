"""Section VI-D: tile and cluster power while running matmul at 500 MHz.

Regenerates the power-breakdown table.  The absolute figures depend on the
access mix of the matmul kernel (see EXPERIMENTS.md for the deviations), so
the assertions focus on the structure the paper reports: the instruction
cache is the largest consumer, followed by the cores; the tiles dominate the
cluster power (86 %).
"""

import pytest

from repro.evaluation.power_table import run_power_table


@pytest.mark.experiment
def test_power_breakdown_table(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        lambda: run_power_table(settings), rounds=1, iterations=1
    )
    report_sink.append(result.report())

    breakdown = result.breakdown

    # Component ordering of Section VI-D: I$ > cores > SPM.
    assert breakdown.icache_mw > breakdown.cores_mw > breakdown.spm_mw

    # The instruction cache is the single largest consumer (~40 % in the paper).
    assert breakdown.component_share(breakdown.icache_mw) == pytest.approx(0.40, abs=0.08)

    # The cores draw roughly a quarter of the tile power.
    assert breakdown.component_share(breakdown.cores_mw) == pytest.approx(0.27, abs=0.08)

    # 86 % of the cluster power is consumed inside the tiles.
    assert breakdown.tiles_fraction == pytest.approx(0.86, abs=0.03)

    # The tile average sits in the tens of milliwatts (paper: 20.9 mW).
    assert 10.0 < breakdown.tile_total_mw < 40.0

    # The kernel whose activity drove the model must have run correctly.
    assert result.kernel.cycles > 0
