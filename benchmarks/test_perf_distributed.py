"""Performance benchmark: distributed sweep scaling, 4 local workers vs 1.

Runs the Figure-5 load sweep cold-cache (no cache attached, so every
point is computed) through the :class:`DistributedExecutor` twice — one
local worker, then four — and records the wall-clock ratio.  Both runs
pay the same fork/IPC overhead, so the ratio isolates what distribution
adds: work-stealing across genuinely parallel worker processes.

Scaling is physically bounded by the host's core count: on a 4+-core
machine four workers must deliver at least :data:`SPEEDUP_FLOOR`; on
smaller hosts (CI smoke containers are often 1-2 cores) the measured
ratio is recorded as informational and the floor is not asserted — a
1-core machine cannot exhibit parallel speedup no matter how good the
scheduler is.  The committed baseline records the ``cpus`` it was
measured on, and ``tools/bench_report.py`` only gates runs against a
baseline from a matching core count (the same pattern as the jit-aware
compiled-engine gate).

Results land in ``benchmarks/BENCH_experiments.json`` under a
``"distributed"`` key; ``benchmarks/BENCH_experiments.baseline.json`` is
the committed reference.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.evaluation.settings import ExperimentSettings
from repro.experiments.distributed import DistributedExecutor
from repro.experiments.registry import EXPERIMENTS

WARMUP_CYCLES = 20
MEASURE_CYCLES = 60
WORKERS = 4

RESULT_PATH = (
    Path(os.environ.get("BENCH_OUT_DIR") or Path(__file__).resolve().parent)
    / "BENCH_experiments.json"
)
#: Minimum acceptable 4-worker-over-1-worker speedup on a host that can
#: physically deliver it (>= 4 cores).
SPEEDUP_FLOOR = 3.0


def _sweep_specs():
    settings = ExperimentSettings(
        engine="vector",
        warmup_cycles=WARMUP_CYCLES,
        measure_cycles=MEASURE_CYCLES,
    )
    return EXPERIMENTS["fig5"].build_sweep(settings).specs()


def _timed_run(workers: int, specs) -> tuple[float, list]:
    executor = DistributedExecutor(workers=workers)
    started = time.perf_counter()
    results = executor.run(specs)
    return time.perf_counter() - started, results


def test_distributed_scaling_and_write_bench(report_sink):
    specs = _sweep_specs()
    cpus = os.cpu_count() or 1

    serial_seconds, serial_results = _timed_run(1, specs)
    fleet_seconds, fleet_results = _timed_run(WORKERS, specs)

    # Identity first: a fleet that computes different numbers has no
    # business being compared on speed.
    assert [r.average_latency for r in serial_results] == [
        r.average_latency for r in fleet_results
    ]
    assert [r.throughput for r in serial_results] == [
        r.throughput for r in fleet_results
    ]

    speedup = serial_seconds / fleet_seconds if fleet_seconds else 0.0

    payload = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    payload["distributed"] = {
        "benchmark": (
            f"cold-cache fig5 load sweep ({len(specs)} points, "
            f"{WARMUP_CYCLES}+{MEASURE_CYCLES} cycles/point, vector engine) "
            f"on {WORKERS} local workers vs 1"
        ),
        "points": len(specs),
        "workers": WORKERS,
        "cpus": cpus,
        "warmup_cycles": WARMUP_CYCLES,
        "measure_cycles": MEASURE_CYCLES,
        "serial_seconds": round(serial_seconds, 4),
        "fleet_seconds": round(fleet_seconds, 4),
        "speedup_4v1": round(speedup, 2),
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    report_sink.append(
        f"distributed benchmark ({payload['distributed']['benchmark']}): "
        f"1 worker {serial_seconds:.3f}s -> {WORKERS} workers "
        f"{fleet_seconds:.3f}s, speedup {speedup:.2f}x on {cpus} cpus "
        f"-> {RESULT_PATH.name}"
    )

    if cpus >= WORKERS:
        assert speedup >= SPEEDUP_FLOOR
    # On narrower hosts the ratio is informational: parallel speedup is
    # bounded by the core count, not by the scheduler under test.
