"""Ablation: elastic-buffer depth of the interconnect register boundaries.

Section III-A introduces optional elastic buffers at every crossbar output to
break combinational paths.  This ablation sweeps the buffer depth on the TopH
cluster under heavy uniform traffic and exposes the area/performance
trade-off behind the design's two-entry buffers: single-entry buffers lose
both saturation throughput and latency (a full register cannot accept a new
word in the cycle its occupant leaves a congested downstream stage), while
deeper buffers keep buying throughput at the cost of storage in every one of
the hundreds of register boundaries.
"""

import pytest

from repro.core.cluster import MemPoolCluster
from repro.core.config import TimingParameters
from repro.traffic import TrafficSimulation
from repro.utils.tables import format_table

DEPTHS = (1, 2, 4)
LOAD = 0.5


def _throughput_for_depth(settings, depth: int):
    timing = TimingParameters(elastic_buffer_depth=depth)
    config = settings.config("toph", timing=timing)
    cluster = MemPoolCluster(config)
    simulation = TrafficSimulation(cluster, LOAD, seed=settings.seed)
    return simulation.run(
        warmup_cycles=settings.warmup_cycles, measure_cycles=settings.measure_cycles
    )


@pytest.mark.experiment
def test_ablation_elastic_buffer_depth(benchmark, settings, report_sink):
    results = benchmark.pedantic(
        lambda: {depth: _throughput_for_depth(settings, depth) for depth in DEPTHS},
        rounds=1,
        iterations=1,
    )
    rows = [
        [depth, results[depth].throughput, results[depth].average_latency]
        for depth in DEPTHS
    ]
    report_sink.append(
        format_table(
            ["elastic buffer depth", "throughput (req/core/cycle)", "avg latency (cycles)"],
            rows,
            title=f"Ablation: TopH elastic-buffer depth at load {LOAD}",
        )
    )

    # Saturation throughput grows monotonically with buffer depth.
    assert results[1].throughput < results[2].throughput < results[4].throughput * 1.001
    # The paper's two-entry design point clearly beats single-entry buffers
    # on both throughput and latency under heavy load.
    assert results[2].throughput > results[1].throughput * 1.05
    assert results[2].average_latency < results[1].average_latency
