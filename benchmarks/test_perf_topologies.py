"""Performance benchmark: new topology families under both engines.

The CI regression gate of ``tools/bench_report.py`` historically covered
only the paper's Top1 sweep (``test_perf_engine.py``); this module adds
one ``mesh`` and one ``torus`` point so compile and advance performance of
the multi-hop families — whose per-hop register structure stresses the
level-ordered passes very differently from the shallow butterflies — sits
under the same >20 % speedup-regression gate.

For each topology the benchmark first re-asserts legacy/vector flit-log
equivalence (the smoke gate: a family whose routing or level assignment
drifted fails here before any timing), then times ``advance()`` on both
engines over a small load sweep plus the one-off topology build + path
compile, and merges a ``"topologies"`` section into
``benchmarks/BENCH_engine.json``.  ``tools/bench_report.py`` diffs each
family's speedup against the committed baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.engine import CompiledNetwork, VectorStageNetwork
from repro.interconnect.topology import build_topology
from repro.traffic.simulation import TrafficSimulation

#: Topology points under the gate: name -> family parameters.
TOPOLOGY_POINTS = {"mesh": {}, "torus": {}}
#: Injected loads of the per-topology sweep (request/core/cycle).
BENCH_LOADS = (0.1, 0.3)
WARMUP_CYCLES = 200
MEASURE_CYCLES = 600
SEED = 0

RESULT_PATH = (
    Path(os.environ.get("BENCH_OUT_DIR") or Path(__file__).resolve().parent)
    / "BENCH_engine.json"
)
#: Hard floor on the vector-vs-legacy advance speedup per family — far
#: below the committed baselines, so slow CI boxes stay green while a
#: vector engine that stopped being faster on multi-hop paths still fails.
SPEEDUP_FLOOR = 1.3


def _config(name: str) -> MemPoolConfig:
    return MemPoolConfig.scaled(name, topology_params=TOPOLOGY_POINTS[name])


def _timed_advance(network):
    """Wrap ``network.advance`` on the instance; return the accumulator."""
    spent = [0.0]
    inner = network.advance

    def advance(cycle):
        start = time.perf_counter()
        result = inner(cycle)
        spent[0] += time.perf_counter() - start
        return result

    network.advance = advance
    return spent


def _sweep_once(name: str, engine: str) -> tuple[float, int]:
    """One pass over the load sweep; return (advance_s, cycles)."""
    advance_seconds = 0.0
    total_cycles = 0
    for load in BENCH_LOADS:
        cluster = MemPoolCluster(_config(name), engine=engine)
        network = cluster.network  # build the facade/compile outside the timing
        target = network.engine if isinstance(network, VectorStageNetwork) else network
        spent = _timed_advance(target)
        simulation = TrafficSimulation(cluster, load, seed=SEED)
        simulation.run(warmup_cycles=WARMUP_CYCLES, measure_cycles=MEASURE_CYCLES)
        advance_seconds += spent[0]
        total_cycles += WARMUP_CYCLES + MEASURE_CYCLES
    return advance_seconds, total_cycles


def _compile_seconds(name: str) -> float:
    """Build + full path-template compile time of one topology (best of 2)."""
    best = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        topology = build_topology(_config(name))
        compiled = CompiledNetwork(topology)
        for core in range(topology.config.num_cores):
            compiled.template_row(core, True)
            compiled.template_row(core, False)
        best = min(best, time.perf_counter() - started)
    return best


def test_topology_speedups_and_write_bench(report_sink):
    section = {}
    for name in TOPOLOGY_POINTS:
        # Smoke gate: the two engines must compute the same simulation.
        logs = {}
        for engine in ("legacy", "vector"):
            cluster = MemPoolCluster(_config(name), engine=engine)
            logs[engine] = TrafficSimulation(cluster, 0.3, seed=SEED).run(
                warmup_cycles=100, measure_cycles=200, record_flits=True
            ).flit_log
        assert logs["legacy"] == logs["vector"], name

        legacy = min(_sweep_once(name, "legacy")[0] for _ in range(2))
        vector = min(_sweep_once(name, "vector")[0] for _ in range(2))
        cycles = len(BENCH_LOADS) * (WARMUP_CYCLES + MEASURE_CYCLES)
        speedup = legacy / vector
        section[name] = {
            "params": TOPOLOGY_POINTS[name],
            "legacy_advance_seconds": round(legacy, 4),
            "vector_advance_seconds": round(vector, 4),
            "cycles": cycles,
            "compile_seconds": round(_compile_seconds(name), 4),
            "speedup": round(speedup, 2),
        }
        report_sink.append(
            f"topology benchmark ({name}, 64 cores, loads {list(BENCH_LOADS)}): "
            f"advance {speedup:.2f}x ({legacy:.3f}s -> {vector:.3f}s), "
            f"compile {section[name]['compile_seconds']}s"
        )
        assert speedup >= SPEEDUP_FLOOR, name

    # Merge-update: the engine/batch/workload benchmarks keep their own
    # sections in the same file, whichever order the suite ran in.
    payload = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    payload["topologies"] = {
        "benchmark": "64-core topology sweep "
                     f"(loads {list(BENCH_LOADS)}, "
                     f"{WARMUP_CYCLES}+{MEASURE_CYCLES} cycles/point)",
        **section,
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
