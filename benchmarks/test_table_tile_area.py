"""Section VI-B: tile implementation figures (area, complexity, breakdown).

Regenerates the tile-level physical table: a 425 um x 425 um macro of about
908 kGE at 72.8 % utilisation, dominated by the L1 SPM (40.2 % of the placed
area) and the instruction cache (23.6 %), with a 53-gate critical path.
"""

import pytest

from repro.evaluation.physical_tables import run_physical_tables
from repro.physical.timing import TILE_CRITICAL_PATH


@pytest.mark.experiment
def test_tile_implementation_table(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        lambda: run_physical_tables(settings), rounds=1, iterations=1
    )
    report_sink.append(result.report())

    tile = result.tile
    assert tile.macro_side_um == pytest.approx(425, abs=12)
    assert tile.total_kge == pytest.approx(908, rel=0.06)
    assert tile.utilisation == pytest.approx(0.728, abs=0.01)
    assert tile.share(tile.spm_um2) == pytest.approx(0.402, abs=0.04)
    assert tile.share(tile.icache_um2) == pytest.approx(0.236, abs=0.04)
    assert TILE_CRITICAL_PATH.total_gates == 53
