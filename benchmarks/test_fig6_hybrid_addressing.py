"""Figure 6: TopH with the hybrid addressing scheme for several p_local values.

Regenerates the throughput and latency curves for p_local in {0, 25, 50, 100}%
and checks the paper's claims: throughput rises monotonically with locality
and an application with 25 % local (stack) accesses gains on the order of
tens of percent without code changes.
"""

import pytest

from repro.evaluation.fig6 import run_fig6

LOADS = (0.1, 0.3, 0.5, 0.7, 0.9)
P_LOCALS = (0.0, 0.25, 0.5, 1.0)


@pytest.mark.experiment
def test_fig6_hybrid_addressing(benchmark, settings, report_sink):
    result = benchmark.pedantic(
        lambda: run_fig6(settings, loads=LOADS, p_locals=P_LOCALS),
        rounds=1,
        iterations=1,
    )
    report_sink.append(result.report())

    saturation = {p: result.saturation_throughput(p) for p in P_LOCALS}

    # Figure 6a: more locality -> more accepted throughput, monotonically.
    assert saturation[0.0] < saturation[0.25] < saturation[0.5] < saturation[1.0]

    # Fully local traffic comes close to one request per core per cycle.
    assert saturation[1.0] > 0.75

    # Figure 6b: at a load beyond the remote-only saturation point, 25 % of
    # local accesses already cut the average latency substantially.
    high_load_index = LOADS.index(0.5)
    latency_remote = result.latency(0.0)[high_load_index]
    latency_quarter = result.latency(0.25)[high_load_index]
    assert latency_quarter < latency_remote

    # And the fully local curve stays near the 1-cycle bank access.
    assert result.latency(1.0)[0] < 3.0
