"""Performance benchmark: legacy vs vectorized flit-transport engine.

Times ``advance()`` — the cycle-level transport core — of both engines on
the same 64-core load sweep and writes the measurements to
``benchmarks/BENCH_engine.json``: simulated cycles per second of wall time
for each engine, the advance speedup (the headline number) and the
end-to-end sweep speedup.  ``tools/bench_report.py`` diffs that file
against the committed baseline (``BENCH_engine.baseline.json``) and fails
on a >20 % speedup regression, which is what ``make bench-engine`` runs.

The workload is the Figure-5-style uniform-random load sweep on the
64-core Top1 cluster — the topology whose congestion behaviour is the
paper's key negative result, covering both the uncongested and the
saturated regime of the engine.  Before any timing, one sweep point is run
on both engines with per-flit recording to re-assert cycle-exactness, so
the two columns of the benchmark are guaranteed to be computing the same
thing.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.cluster import MemPoolCluster
from repro.core.config import MemPoolConfig
from repro.engine import VectorStageNetwork
from repro.engine.kernel import JIT_ENABLED
from repro.traffic.simulation import TrafficSimulation

#: Injected loads of the benchmark sweep (request/core/cycle); spans the
#: Figure 5 range from zero-load to deep Top1 saturation.
BENCH_LOADS = (0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5)
BENCH_TOPOLOGY = "top1"
WARMUP_CYCLES = 300
MEASURE_CYCLES = 1000
SEED = 0

#: Snapshot destination.  ``BENCH_OUT_DIR`` redirects the write so local
#: re-runs do not dirty the committed snapshot, which is only refreshed
#: deliberately from a reference host (host noise swings the per-pattern
#: numbers by tens of percent between runs).
RESULT_PATH = (
    Path(os.environ.get("BENCH_OUT_DIR") or Path(__file__).resolve().parent)
    / "BENCH_engine.json"
)
#: Minimum acceptable advance() speedup — a hard floor well below the
#: recorded baseline, so the suite stays green on slow, noisy CI boxes
#: while still catching a vector engine that stopped being faster.
SPEEDUP_FLOOR = 2.0
#: Minimum compiled-over-vector advance() speedup with the numba backend.
#: Only asserted when the JIT is active: the pure-Python fallback runs the
#: same kernels as interpreted bytecode and is legitimately slower than
#: the vector engine (tools/bench_report.py gates each jit mode only
#: against a baseline recorded in the same mode).
COMPILED_SPEEDUP_FLOOR = 10.0
#: Window of the paper-scale 256-core smoke sweep (short on purpose: at
#: 256 cores the per-cycle work is the signal, not the horizon).
FULL_SCALE_WARMUP = 50
FULL_SCALE_MEASURE = 150


def _timed_advance(network):
    """Wrap ``network.advance`` on the instance; return the accumulator."""
    spent = [0.0]
    inner = network.advance

    def advance(cycle):
        start = time.perf_counter()
        result = inner(cycle)
        spent[0] += time.perf_counter() - start
        return result

    network.advance = advance
    return spent


def _sweep_once(engine: str) -> tuple[float, float, int]:
    """One pass over the sweep; return (advance_s, total_s, cycles)."""
    advance_seconds = 0.0
    total_seconds = 0.0
    total_cycles = 0
    for load in BENCH_LOADS:
        cluster = MemPoolCluster(MemPoolConfig.scaled(BENCH_TOPOLOGY), engine=engine)
        network = cluster.network  # build the facade/compile outside the timing
        # The vector traffic driver calls the SoA engine directly; time the
        # engine's own advance there, the stage network's otherwise.
        target = network.engine if isinstance(network, VectorStageNetwork) else network
        spent = _timed_advance(target)
        simulation = TrafficSimulation(cluster, load, seed=SEED)
        started = time.perf_counter()
        simulation.run(warmup_cycles=WARMUP_CYCLES, measure_cycles=MEASURE_CYCLES)
        total_seconds += time.perf_counter() - started
        advance_seconds += spent[0]
        total_cycles += WARMUP_CYCLES + MEASURE_CYCLES
    return advance_seconds, total_seconds, total_cycles


def _run_sweep(engine: str, repetitions: int = 2) -> dict:
    """Benchmark one engine; best-of-N to filter scheduler noise."""
    passes = [_sweep_once(engine) for _ in range(repetitions)]
    advance_seconds = min(run[0] for run in passes)
    total_seconds = min(run[1] for run in passes)
    total_cycles = passes[0][2]
    return {
        "advance_seconds": round(advance_seconds, 4),
        "total_seconds": round(total_seconds, 4),
        "cycles": total_cycles,
        "advance_cycles_per_sec": round(total_cycles / advance_seconds),
        "end_to_end_cycles_per_sec": round(total_cycles / total_seconds),
    }


def test_engine_speedup_and_write_bench(report_sink):
    # Cycle-exactness gate: both engines must compute the same sweep.
    logs = {}
    for engine in ("legacy", "vector"):
        cluster = MemPoolCluster(MemPoolConfig.scaled(BENCH_TOPOLOGY), engine=engine)
        logs[engine] = TrafficSimulation(cluster, 0.3, seed=SEED).run(
            warmup_cycles=100, measure_cycles=300, record_flits=True
        ).flit_log
    assert logs["legacy"] == logs["vector"]

    legacy = _run_sweep("legacy")
    vector = _run_sweep("vector")
    advance_speedup = legacy["advance_seconds"] / vector["advance_seconds"]
    end_to_end_speedup = legacy["total_seconds"] / vector["total_seconds"]
    # Merge-update: the batch/workload benchmarks keep their own sections
    # in the same file, whichever order the suite ran in.
    payload = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    payload.update(
        {
            "benchmark": "64-core load sweep "
                         f"({BENCH_TOPOLOGY}, loads {list(BENCH_LOADS)}, "
                         f"{WARMUP_CYCLES}+{MEASURE_CYCLES} cycles/point)",
            "legacy": legacy,
            "vector": vector,
            "speedup": round(advance_speedup, 2),
            "end_to_end_speedup": round(end_to_end_speedup, 2),
        }
    )
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    report_sink.append(
        f"engine benchmark ({payload['benchmark']}): "
        f"advance {advance_speedup:.2f}x, end-to-end {end_to_end_speedup:.2f}x "
        f"({legacy['advance_cycles_per_sec']} -> "
        f"{vector['advance_cycles_per_sec']} cycles/s) -> {RESULT_PATH.name}"
    )
    assert advance_speedup >= SPEEDUP_FLOOR


def test_compiled_speedup_and_write_bench(report_sink):
    """Compiled-kernel engine vs the vector engine on the same sweep.

    Merges a ``"compiled"`` section into ``BENCH_engine.json`` with the
    advance speedup over vector and the ``jit`` flag recording which
    kernel backend produced it; ``tools/bench_report.py`` gates the ratio
    only against a baseline recorded in the same jit mode.
    """
    # Cycle-exactness gate first: same sweep, same flits.
    logs = {}
    for engine in ("vector", "compiled"):
        cluster = MemPoolCluster(MemPoolConfig.scaled(BENCH_TOPOLOGY), engine=engine)
        logs[engine] = TrafficSimulation(cluster, 0.3, seed=SEED).run(
            warmup_cycles=100, measure_cycles=300, record_flits=True
        ).flit_log
    assert logs["vector"] == logs["compiled"]

    vector = _run_sweep("vector")
    compiled = _run_sweep("compiled")
    speedup = vector["advance_seconds"] / compiled["advance_seconds"]
    payload = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    payload["compiled"] = {
        "benchmark": "64-core load sweep "
                     f"({BENCH_TOPOLOGY}, loads {list(BENCH_LOADS)}, "
                     f"{WARMUP_CYCLES}+{MEASURE_CYCLES} cycles/point)",
        "vector": vector,
        "compiled": compiled,
        "speedup_vs_vector": round(speedup, 2),
        "jit": JIT_ENABLED,
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    mode = "numba JIT" if JIT_ENABLED else "pure-Python kernels"
    report_sink.append(
        f"compiled benchmark ({mode}): advance {speedup:.2f}x over vector "
        f"({vector['advance_cycles_per_sec']} -> "
        f"{compiled['advance_cycles_per_sec']} cycles/s) -> {RESULT_PATH.name}"
    )
    if JIT_ENABLED:
        assert speedup >= COMPILED_SPEEDUP_FLOOR


def test_full_scale_smoke_sweep_and_write_bench(report_sink):
    """Paper-scale 256-core fig5-style point: exact and CI-friendly fast.

    Runs one short uniform-load point on the full 256-core TopH cluster
    through all three per-sim engines, asserts flit-for-flit identity, and
    records the compiled engine's wall time in the ``"compiled"`` section
    (informational — machine-dependent).
    """
    config = MemPoolConfig.full("toph")
    assert config.num_cores == 256
    logs = {}
    seconds = {}
    for engine in ("legacy", "vector", "compiled"):
        cluster = MemPoolCluster(config, engine=engine)
        cluster.network  # build/compile outside the timing
        started = time.perf_counter()
        logs[engine] = TrafficSimulation(cluster, 0.15, seed=SEED).run(
            warmup_cycles=FULL_SCALE_WARMUP,
            measure_cycles=FULL_SCALE_MEASURE,
            record_flits=True,
        ).flit_log
        seconds[engine] = time.perf_counter() - started
    assert logs["legacy"]  # the comparison must not be vacuous
    assert logs["legacy"] == logs["vector"]
    assert logs["legacy"] == logs["compiled"]

    payload = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    section = payload.setdefault("compiled", {})
    section["full_scale"] = {
        "benchmark": "256-core toph uniform point, load 0.15, "
                     f"{FULL_SCALE_WARMUP}+{FULL_SCALE_MEASURE} cycles",
        "jit": JIT_ENABLED,
        "seconds": {name: round(value, 3) for name, value in seconds.items()},
    }
    RESULT_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    report_sink.append(
        "full-scale smoke (256-core toph): flit-for-flit identical; "
        + ", ".join(f"{name} {value:.2f}s" for name, value in seconds.items())
        + f" -> {RESULT_PATH.name}"
    )
