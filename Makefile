# Developer entry points for the MemPool reproduction.
#
#   make test       unit/integration tests (tier-1 verify)
#   make ci         the full CI gate: tests + docs-lint + enforced bench report
#   make coverage   tier-1 suite under pytest-cov with an enforced threshold
#   make bench      benchmark harness (regenerates every figure/table)
#   make bench-engine  engine + batch + topology benchmarks + enforced report
#   make distributed-smoke  distributed executor vs serial: identity + crash recovery
#   make service-smoke  HTTP sweep service end to end: submit/stream/fetch vs direct run
#   make fuzz       bounded differential fuzz of the four engines
#   make validate   statistical golden-band validation (repro.validation)
#   make validate-update  re-measure and re-commit the golden bands
#   make lint       ruff (pyproject.toml config) when available, else docs-lint
#   make docs-lint  docstring lint over the public API
#   make figures    regenerate all paper figures through the sweep engine
#   make clean-cache  drop the on-disk experiment result cache

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
WORKERS ?= 1
# Sampled configurations per differential-fuzz property (`make fuzz`):
# 25 keeps the smoke run to seconds; CI's nightly job raises it to dig.
FUZZ_BUDGET ?= 25
# Enforced line-coverage floor of `make coverage` (the CI coverage job):
# the tier-1 suite measured ~95% line coverage of src/repro when the gate
# was introduced; the floor sits a few points below so platform- and
# version-dependent branches don't flake the job, while a real coverage
# slide still fails it.  Raise it as coverage grows, never lower it to
# make a failing build pass.
COV_MIN ?= 92

.PHONY: test ci coverage bench bench-engine distributed-smoke service-smoke \
	fuzz validate validate-update lint docs-lint figures clean-cache

# The trailing bench report is informational in the test flow: it runs
# whether or not pytest passed, but the target's exit status is always
# pytest's, so a test failure can never be masked by the report (and a
# perf regression alone never fails the tier-1 gate — the enforcing runs
# are `make bench-engine` and `make ci`).
test:
	@$(PYTHON) -m pytest -x -q tests; status=$$?; \
	$(PYTHON) tools/bench_report.py || true; \
	exit $$status

# One entry point shared by .github/workflows/ci.yml and local runs: the
# tier-1 suite, the docstring lint and the *enforced* benchmark report —
# no `-` suppression anywhere, every step's failure fails the target.
ci:
	$(PYTHON) -m pytest -x -q tests
	$(MAKE) docs-lint
	$(PYTHON) tools/bench_report.py

# Enforced coverage run (the CI coverage job): fails below COV_MIN and
# always leaves coverage.xml for the artifact upload.  Requires
# pytest-cov; the guard gives offline machines an actionable error
# instead of pytest's unknown-option stack trace.
coverage:
	@$(PYTHON) -c "import pytest_cov" >/dev/null 2>&1 || { \
		echo "make coverage requires pytest-cov (pip install pytest-cov)"; \
		exit 1; \
	}
	$(PYTHON) -m pytest -q tests --cov=repro --cov-report=term \
		--cov-report=xml:coverage.xml --cov-fail-under=$(COV_MIN)

bench:
	$(PYTHON) -m pytest -q benchmarks

bench-engine:
	$(PYTHON) -m pytest -q benchmarks/test_perf_engine.py \
		benchmarks/test_perf_batch.py benchmarks/test_perf_workloads.py \
		benchmarks/test_perf_topologies.py \
		benchmarks/test_perf_distributed.py
	$(PYTHON) tools/bench_report.py

# Distributed execution smoke: the work-stealing executor over local
# forked workers AND loopback TCP workers must produce byte-identical
# results (same cache keys, same pickled values) to a serial run, and a
# SIGKILLed worker's shard must requeue without losing a point; then the
# 4-vs-1 local-worker scaling benchmark with the cpu-aware report gate.
distributed-smoke:
	$(PYTHON) -m pytest -x -q tests/test_distributed.py
	$(PYTHON) -m pytest -q benchmarks/test_perf_distributed.py
	$(PYTHON) tools/bench_report.py

# Sweep-service smoke: the job-layer unit tests, then the end-to-end HTTP
# path — boot `serve` on an ephemeral port, submit the fig5 smoke sweep,
# stream its NDJSON events to completion, byte-compare every
# /results/{key} pickle against a direct Executor run, and prove an
# identical resubmission is served from the cache with zero recomputes.
service-smoke:
	$(PYTHON) -m pytest -x -q tests/test_service.py
	$(PYTHON) tools/service_smoke.py

# Property-based differential fuzzing: FUZZ_BUDGET configurations sampled
# from the registries' whole space, each run on all four engines and
# compared flit for flit.  Failures shrink and print a one-line
# `python -m repro.validation --replay '<spec>'` reproducer.
fuzz:
	FUZZ_BUDGET=$(FUZZ_BUDGET) $(PYTHON) -m pytest -x -q \
		tests/test_fuzz_differential.py

# Severity-banded statistical validation against the committed goldens
# (benchmarks/GOLDEN_validation.json); exits 1 on a reject-band deviation
# and writes benchmarks/VALIDATION_report.json for the CI artifact.
validate:
	$(PYTHON) -m repro.experiments validate

validate-update:
	$(PYTHON) -m repro.experiments validate --update

# Full ruff lint (E/F + the D1 docstring rules, configured in
# pyproject.toml); falls back to the docstring subset on machines
# without ruff.
lint:
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "ruff not installed; running docs-lint fallback"; \
		$(MAKE) docs-lint; \
	fi

# Prefer ruff's pydocstyle (D) rules or pydocstyle itself when available;
# fall back to the bundled AST checker (same missing-docstring subset) on
# offline machines that have neither.  Either way the generated catalogue
# tables of README.md / docs/architecture.md are checked against the live
# registries (`tools/docs_lint.py --tables --write` regenerates them).
docs-lint:
	@$(PYTHON) tools/docs_lint.py --tables
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check --select D100,D101,D102,D103,D104 \
			src/repro/experiments src/repro/evaluation \
			src/repro/engine src/repro/workloads src/repro/topologies \
			src/repro/validation src/repro/service tools; \
	elif $(PYTHON) -c "import pydocstyle" >/dev/null 2>&1; then \
		$(PYTHON) -m pydocstyle --select D100,D101,D102,D103,D104 \
			src/repro/experiments src/repro/evaluation src/repro/engine \
			src/repro/workloads src/repro/topologies \
			src/repro/validation src/repro/service tools; \
	else \
		$(PYTHON) tools/docs_lint.py src/repro/experiments src/repro/evaluation \
			src/repro/traffic src/repro/kernels src/repro/engine \
			src/repro/workloads src/repro/topologies \
			src/repro/validation src/repro/service tools; \
	fi

figures:
	$(PYTHON) -m repro.experiments run --workers $(WORKERS)

clean-cache:
	$(PYTHON) -m repro.experiments clean
