# Developer entry points for the MemPool reproduction.
#
#   make test       unit/integration tests (tier-1 verify)
#   make bench      benchmark harness (regenerates every figure/table)
#   make docs-lint  docstring lint over the public API
#   make figures    regenerate all paper figures through the sweep engine
#   make clean-cache  drop the on-disk experiment result cache

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
WORKERS ?= 1

.PHONY: test bench docs-lint figures clean-cache

test:
	$(PYTHON) -m pytest -x -q tests

bench:
	$(PYTHON) -m pytest -q benchmarks

# Prefer ruff's pydocstyle (D) rules or pydocstyle itself when available;
# fall back to the bundled AST checker (same missing-docstring subset) on
# offline machines that have neither.
docs-lint:
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check --select D1 src/repro/experiments src/repro/evaluation; \
	elif $(PYTHON) -c "import pydocstyle" >/dev/null 2>&1; then \
		$(PYTHON) -m pydocstyle --select D100,D101,D102,D103,D104 \
			src/repro/experiments src/repro/evaluation; \
	else \
		$(PYTHON) tools/docs_lint.py src/repro/experiments src/repro/evaluation \
			src/repro/traffic src/repro/kernels; \
	fi

figures:
	$(PYTHON) -m repro.experiments run --workers $(WORKERS)

clean-cache:
	$(PYTHON) -m repro.experiments clean
