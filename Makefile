# Developer entry points for the MemPool reproduction.
#
#   make test       unit/integration tests (tier-1 verify)
#   make bench      benchmark harness (regenerates every figure/table)
#   make bench-engine  legacy-vs-vector engine benchmark + regression report
#   make docs-lint  docstring lint over the public API
#   make figures    regenerate all paper figures through the sweep engine
#   make clean-cache  drop the on-disk experiment result cache

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
WORKERS ?= 1

.PHONY: test bench bench-engine docs-lint figures clean-cache

# The trailing bench report is informational in the test flow (the `-`
# prefix keeps a perf regression from failing the tier-1 gate); the
# enforcing run is `make bench-engine`.
test:
	$(PYTHON) -m pytest -x -q tests
	-@$(PYTHON) tools/bench_report.py

bench:
	$(PYTHON) -m pytest -q benchmarks

bench-engine:
	$(PYTHON) -m pytest -q benchmarks/test_perf_engine.py benchmarks/test_perf_workloads.py
	$(PYTHON) tools/bench_report.py

# Prefer ruff's pydocstyle (D) rules or pydocstyle itself when available;
# fall back to the bundled AST checker (same missing-docstring subset) on
# offline machines that have neither.
docs-lint:
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check --select D1 src/repro/experiments src/repro/evaluation \
			src/repro/engine src/repro/workloads; \
	elif $(PYTHON) -c "import pydocstyle" >/dev/null 2>&1; then \
		$(PYTHON) -m pydocstyle --select D100,D101,D102,D103,D104 \
			src/repro/experiments src/repro/evaluation src/repro/engine \
			src/repro/workloads; \
	else \
		$(PYTHON) tools/docs_lint.py src/repro/experiments src/repro/evaluation \
			src/repro/traffic src/repro/kernels src/repro/engine \
			src/repro/workloads; \
	fi

figures:
	$(PYTHON) -m repro.experiments run --workers $(WORKERS)

clean-cache:
	$(PYTHON) -m repro.experiments clean
